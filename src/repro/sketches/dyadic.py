"""Dyadic-interval hash-sketch hierarchy (paper Section 4.2, "optimized
SKIMDENSE" via [9]).

Scanning every domain value to find dense frequencies costs ``O(|D|)``,
which is unacceptable for huge domains (the paper's example: 64-bit IP
addresses).  The fix is hierarchical: maintain ``log2 |D| + 1`` hash
sketches, where the sketch at level ``l`` summarises the stream mapped
through ``v -> v >> l`` — i.e. each level-``l`` value is a *dyadic
interval* of ``2**l`` consecutive domain values and its frequency is the
interval's total frequency.

Because an interval's frequency upper-bounds every enclosed value's
frequency, a top-down descent can prune any interval whose estimate falls
below the threshold: no value inside it can be dense.  At most ``2N/T``
intervals per level survive a threshold ``T``, so extraction costs
``O((N/T) * log|D| * depth)`` instead of ``O(|D| * depth)``.

The hierarchy stops at a coarsest level with at most
``coarse_cutoff`` intervals, which the descent enumerates exhaustively.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import TYPE_CHECKING

import numpy as np

from ..errors import IncompatibleSketchError, ParameterError
from ..hashing.bulk import BulkHashCache
from ..obs import METRICS as _METRICS
from ..trace import TRACER as _TRACER
from .base import StreamSynopsis
from .hash_sketch import HashSketch, HashSketchSchema

if TYPE_CHECKING:  # type-only: repro.streams imports repro.sketches at runtime
    from ..streams.model import FrequencyVector


def _is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


class DyadicSketchSchema:
    """Shared randomness/shape for join-compatible dyadic sketch hierarchies.

    Parameters
    ----------
    width, depth:
        Per-level hash-sketch dimensions (paper's ``s1``, ``s2``).
    domain_size:
        Must be a power of two (pad the declared domain upward if needed;
        unused values simply never occur, costing nothing).
    seed:
        Base seed; level ``l`` uses an independent stream derived from it.
    coarse_cutoff:
        The hierarchy's coarsest level is the first whose interval count is
        ``<= coarse_cutoff``; the descent starts by enumerating it fully.
    """

    def __init__(
        self,
        width: int,
        depth: int,
        domain_size: int,
        seed: int = 0,
        coarse_cutoff: int = 1024,
    ) -> None:
        if not _is_power_of_two(domain_size):
            raise ParameterError(
                f"domain_size must be a power of two, got {domain_size}; "
                "pad the declared domain upward"
            )
        if coarse_cutoff < 2:
            raise ParameterError(f"coarse_cutoff must be >= 2, got {coarse_cutoff}")
        self.width = width
        self.depth = depth
        self.domain_size = domain_size
        self.seed = seed
        self.coarse_cutoff = coarse_cutoff

        self.level_domains: list[int] = []
        size = domain_size
        while True:
            self.level_domains.append(size)
            if size <= coarse_cutoff or size == 1:
                break
            size //= 2
        seed_stream = np.random.SeedSequence(seed).spawn(len(self.level_domains))
        self.level_schemas = [
            HashSketchSchema(
                width,
                depth,
                level_size,
                seed=int(child.generate_state(1)[0]),
            )
            for level_size, child in zip(self.level_domains, seed_stream)
        ]

    @property
    def num_levels(self) -> int:
        """Number of levels in the hierarchy (level 0 = raw domain)."""
        return len(self.level_domains)

    def create_sketch(self) -> "DyadicHashSketch":
        """A fresh empty hierarchy bound to this schema."""
        return DyadicHashSketch(self)

    def sketch_of(self, frequencies: "FrequencyVector") -> "DyadicHashSketch":
        """Convenience: a hierarchy pre-loaded with a whole frequency vector."""
        sketch = self.create_sketch()
        sketch.ingest_frequency_vector(frequencies)
        return sketch

    def is_compatible(self, other: "DyadicSketchSchema") -> bool:
        """True if hierarchies from ``other`` may be combined with ours."""
        return (
            self.width == other.width
            and self.depth == other.depth
            and self.domain_size == other.domain_size
            and self.num_levels == other.num_levels
            and all(
                a.is_compatible(b)
                for a, b in zip(self.level_schemas, other.level_schemas)
            )
        )

    def __repr__(self) -> str:
        return (
            f"DyadicSketchSchema(width={self.width}, depth={self.depth}, "
            f"domain_size={self.domain_size}, levels={self.num_levels})"
        )


class DyadicHashSketch(StreamSynopsis):
    """A stack of hash sketches over the dyadic aggregation levels of one stream."""

    def __init__(self, schema: DyadicSketchSchema) -> None:
        self._schema = schema
        self._levels = [s.create_sketch() for s in schema.level_schemas]

    # -- synopsis contract ---------------------------------------------------

    @property
    def schema(self) -> DyadicSketchSchema:
        """The schema (shared randomness) this hierarchy was created from."""
        return self._schema

    @property
    def domain_size(self) -> int:
        """Size of the integer value domain this synopsis covers."""
        return self._schema.domain_size

    @property
    def base_sketch(self) -> HashSketch:
        """The level-0 sketch — the one join estimation operates on."""
        return self._levels[0]

    def level_sketch(self, level: int) -> HashSketch:
        """The hash sketch at aggregation level ``level``."""
        return self._levels[level]

    @property
    def absolute_mass(self) -> float:
        """Tracked stream size ``N`` (identical at every level)."""
        return self._levels[0].absolute_mass

    def update(self, value: int, weight: float = 1.0) -> None:
        """O(depth * log|D|): one counter per table per level."""
        for level, sketch in enumerate(self._levels):
            sketch.update(value >> level, weight)

    def update_bulk(self, values: np.ndarray, weights: np.ndarray | None = None) -> None:
        """Fold one batch into every level of the hierarchy.

        Coalesces the batch once (:class:`repro.hashing.BulkHashCache`)
        and derives each level's distinct-interval view by a shift-and-
        merge over the previous level, so the per-level hash families run
        over at most ``min(k, domain >> level)`` distinct ids instead of
        re-hashing all ``n`` raw elements ``num_levels`` times.
        """
        values = np.asarray(values, dtype=np.int64)
        if values.size == 0:
            return
        cache = BulkHashCache(values, weights)
        observed = cache.total_absolute_mass
        with _TRACER.span(
            "sketch.update_bulk",
            elements=int(values.size),
            levels=len(self._levels),
        ) if _TRACER.enabled else nullcontext():
            for level, sketch in enumerate(self._levels):
                level_values, level_masses = cache.level(level)
                sketch.update_coalesced(level_values, level_masses, observed)
        if _METRICS.enabled:
            # Same totals as per-level HashSketch.update_bulk calls: each
            # level is a real hash-sketch update of the whole batch.
            num_levels = len(self._levels)
            _METRICS.count("sketch.update.elements", int(values.size) * num_levels)
            _METRICS.count("sketch.update.batches", num_levels)
            if cache.num_deletions:
                _METRICS.count(
                    "sketch.update.deletions", cache.num_deletions * num_levels
                )

    def update_coalesced(
        self,
        values: np.ndarray,
        masses: np.ndarray,
        observed_mass: float | None = None,
    ) -> None:
        """Ingest a pre-coalesced batch into every level of the hierarchy.

        Mirrors :meth:`HashSketch.update_coalesced`: ``values`` are
        distinct, ``masses`` their summed weights, and ``observed_mass``
        is ``sum(|weight|)`` over the original batch (default:
        ``sum(|masses|)``), keeping :attr:`absolute_mass` identical to
        element-wise ingestion when coalescing cancelled opposite-signed
        weights.  Records no metrics or spans — the caller owns
        instrumentation (the shared-memory shard workers use this to
        apply a whole accumulated stream prefix at flush time).
        """
        values = np.asarray(values, dtype=np.int64)
        masses = np.asarray(masses, dtype=np.float64)
        if masses.shape != values.shape:
            raise ParameterError("masses must have the same shape as values")
        if values.size == 0:
            return
        cache = BulkHashCache(values, masses)
        observed = (
            cache.total_absolute_mass if observed_mass is None
            else float(observed_mass)
        )
        for level, sketch in enumerate(self._levels):
            level_values, level_masses = cache.level(level)
            sketch.update_coalesced(level_values, level_masses, observed)

    def size_in_counters(self) -> int:
        return sum(s.size_in_counters() for s in self._levels)

    def seed_words(self) -> int:
        return sum(s.seed_words() for s in self._levels)

    # -- hierarchical heavy-value search --------------------------------------

    def heavy_values(self, threshold: float) -> np.ndarray:
        """Domain values whose estimated frequency is ``>= threshold``.

        Top-down pruned descent: enumerate the coarsest level, keep
        intervals whose estimate passes the threshold, expand each survivor
        into its two children, repeat down to level 0.  Returns the
        surviving level-0 values (ascending ``int64``); the caller decides
        what to do with their estimates.
        """
        if threshold <= 0:
            raise ParameterError(f"threshold must be positive, got {threshold}")
        top = self._schema.num_levels - 1
        candidates = np.arange(self._schema.level_domains[top], dtype=np.int64)
        for level in range(top, -1, -1):
            if candidates.size == 0:
                return candidates
            if _METRICS.enabled:
                _METRICS.count("skim.dyadic.probes", int(candidates.size))
            with _TRACER.span(
                "skim.dyadic.level", level=level, candidates=int(candidates.size)
            ) if _TRACER.enabled else nullcontext() as sp:
                estimates = self._levels[level].point_estimates(candidates)
                candidates = candidates[estimates >= threshold]
                if sp is not None:
                    sp.set(survivors=int(candidates.size))
                if level > 0:
                    candidates = np.repeat(candidates * 2, 2)
                    candidates[1::2] += 1
        return np.sort(candidates)

    def range_estimate(self, low: int, high: int) -> float:
        """Estimated total frequency of the value range ``[low, high)``.

        Decomposes the range into ``O(log |D|)`` maximal dyadic intervals
        (the classic trick of Cormode-Muthukrishnan [9], which this
        hierarchy exists to support) and sums each interval's COUNTSKETCH
        point estimate at its own level — so the error is logarithmic in
        the range length instead of linear.
        """
        if not 0 <= low < high <= self.domain_size:
            raise ParameterError(
                f"range [{low}, {high}) not within [0, {self.domain_size})"
            )
        total = 0.0
        max_level = self._schema.num_levels - 1
        while low < high:
            # Largest dyadic block starting at `low` that fits in the range
            # and in the hierarchy.
            level = min((low & -low).bit_length() - 1 if low else max_level, max_level)
            while (1 << level) > high - low:
                level -= 1
            total += float(self._levels[level].point_estimate(low >> level))
            low += 1 << level
        return total

    def estimated_descent_cost(self, threshold: float) -> int:
        """Number of point estimates the descent for ``threshold`` performs.

        Instrumentation used by the E7 benchmark to demonstrate the
        ``O((N/T) log|D|)`` versus ``O(|D|)`` gap of Section 4.2.
        """
        top = self._schema.num_levels - 1
        candidates = np.arange(self._schema.level_domains[top], dtype=np.int64)
        cost = 0
        for level in range(top, -1, -1):
            cost += int(candidates.size)
            if candidates.size == 0:
                break
            estimates = self._levels[level].point_estimates(candidates)
            candidates = candidates[estimates >= threshold]
            if level > 0:
                candidates = np.repeat(candidates * 2, 2)
                candidates[1::2] += 1
        return cost

    # -- linearity ---------------------------------------------------------------

    def subtract_frequencies(self, values: np.ndarray, frequencies: np.ndarray) -> None:
        """Subtract a known frequency assignment at *every* level, in place.

        Keeps the hierarchy self-consistent so skimming can be repeated
        (e.g. progressively lowering the threshold).
        """
        values = np.asarray(values, dtype=np.int64)
        frequencies = np.asarray(frequencies, dtype=np.float64)
        if frequencies.shape != values.shape:
            raise ParameterError("frequencies must have the same shape as values")
        if values.size == 0:
            return
        cache = BulkHashCache(values, frequencies)
        for level, sketch in enumerate(self._levels):
            level_values, level_masses = cache.level(level)
            # observed_mass=0.0: subtraction removes already-counted mass,
            # so the tracked stream size N must not change.
            sketch.update_coalesced(level_values, -level_masses, 0.0)

    def merged_with(self, other: "DyadicHashSketch") -> "DyadicHashSketch":
        """Hierarchy of the concatenation of both underlying streams."""
        self._check_compatible(other)
        result = DyadicHashSketch(self._schema)
        result._levels = [
            a.merged_with(b) for a, b in zip(self._levels, other._levels)
        ]
        return result

    def copy(self) -> "DyadicHashSketch":
        """Independent deep copy."""
        result = DyadicHashSketch(self._schema)
        result._levels = [s.copy() for s in self._levels]
        return result

    # -- external counter storage (shared-memory seam) --------------------------

    def counters_view(self) -> list[np.ndarray]:
        """Writable views of every level's counter block, level order."""
        return [
            block for sketch in self._levels for block in sketch.counters_view()
        ]

    def attach_counters(self, buffers: list[np.ndarray]) -> None:
        """Re-home every level's counters into caller-provided buffers.

        ``buffers`` must match :meth:`counters_view` in count and shapes
        (one block per level); see :meth:`HashSketch.attach_counters`.
        """
        if len(buffers) != len(self._levels):
            raise ParameterError(
                f"DyadicHashSketch.attach_counters takes "
                f"{len(self._levels)} buffers (one per level), "
                f"got {len(buffers)}"
            )
        for sketch, buffer in zip(self._levels, buffers):
            sketch.attach_counters([buffer])

    def tracked_masses(self) -> list[float]:
        """Tracked ``sum |weight|`` per counter block (one per level)."""
        return [
            mass for sketch in self._levels for mass in sketch.tracked_masses()
        ]

    def set_tracked_masses(self, masses: list[float]) -> None:
        """Install per-level tracked masses from :meth:`tracked_masses`."""
        if len(masses) != len(self._levels):
            raise ParameterError(
                f"DyadicHashSketch.set_tracked_masses takes "
                f"{len(self._levels)} masses (one per level), "
                f"got {len(masses)}"
            )
        for sketch, mass in zip(self._levels, masses):
            sketch.set_tracked_masses([mass])

    def _check_compatible(self, other: "DyadicHashSketch") -> None:
        if not isinstance(other, DyadicHashSketch):
            raise IncompatibleSketchError(
                f"cannot combine DyadicHashSketch with {type(other).__name__}"
            )
        if other._schema is not self._schema and not self._schema.is_compatible(
            other._schema
        ):
            raise IncompatibleSketchError(
                "hierarchies come from different dyadic schemas (randomness differs)"
            )

    def __repr__(self) -> str:
        return (
            f"DyadicHashSketch(width={self._schema.width}, "
            f"depth={self._schema.depth}, levels={self._schema.num_levels}, "
            f"N={self.absolute_mass:g})"
        )
