"""Space-Saving: deterministic frequent-element tracking (counter-based).

The paper's skimming step needs the stream's *dense* values.  COUNTSKETCH
(and the dyadic descent) find them with randomised guarantees and support
deletions; for **insert-only** streams there is a classic deterministic
alternative from the frequent-elements literature the paper cites ([8-10]):
maintain ``k`` counters, and on a miss evict the minimum counter,
inheriting its count as the newcomer's overestimation bound.  Guarantees:

* every value with true frequency ``> N / k`` is in the summary
  (no false negatives above the threshold);
* each tracked count overestimates by at most its recorded ``error``
  (the evicted minimum at adoption time), bounded by ``N / k``.

Besides standing alone as a synopsis, :meth:`SpaceSaving.dense_candidates`
plugs into skimming as a zero-randomness candidate generator for
insert-only workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DeletionUnsupportedError, DomainError, ParameterError
from .base import StreamSynopsis


@dataclass(frozen=True)
class TrackedCount:
    """One Space-Saving counter: value, count upper bound, and error bound.

    The true frequency lies in ``[count - error, count]``.
    """

    value: int
    count: float
    error: float

    @property
    def guaranteed(self) -> float:
        """Certain lower bound on the value's true frequency."""
        return self.count - self.error


class SpaceSaving(StreamSynopsis):
    """Deterministic top-frequency summary with ``capacity`` counters."""

    def __init__(self, capacity: int, domain_size: int) -> None:
        if capacity < 1:
            raise ParameterError(f"capacity must be >= 1, got {capacity}")
        if domain_size < 1:
            raise ParameterError(f"domain_size must be >= 1, got {domain_size}")
        self.capacity = capacity
        self._domain_size = domain_size
        self._counts: dict[int, float] = {}
        self._errors: dict[int, float] = {}
        self._stream_size = 0.0

    # -- synopsis contract ---------------------------------------------------

    @property
    def domain_size(self) -> int:
        """Size of the integer value domain this synopsis covers."""
        return self._domain_size

    @property
    def stream_size(self) -> float:
        """Total weight observed (``N``)."""
        return self._stream_size

    def update(self, value: int, weight: float = 1.0) -> None:
        if weight <= 0:
            raise DeletionUnsupportedError(
                "Space-Saving is an insert-only summary; use a hash sketch "
                "for general update streams"
            )
        if not 0 <= value < self._domain_size:
            raise DomainError(f"value {value} outside domain [0, {self._domain_size})")
        self._stream_size += weight
        if value in self._counts:
            self._counts[value] += weight
            return
        if len(self._counts) < self.capacity:
            self._counts[value] = weight
            self._errors[value] = 0.0
            return
        victim = min(self._counts, key=self._counts.__getitem__)
        floor = self._counts.pop(victim)
        self._errors.pop(victim)
        # The newcomer inherits the evicted count as its overestimate.
        self._counts[value] = floor + weight
        self._errors[value] = floor

    def update_bulk(self, values: np.ndarray, weights: np.ndarray | None = None) -> None:
        values = np.asarray(values, dtype=np.int64)
        if weights is None:
            # Space-Saving is inherently sequential (each eviction depends
            # on all prior state); per-element is the algorithm, not a
            # regression.  See docs/STATIC_ANALYSIS.md (R2).
            for value in values:  # repro: noqa[R2] -- Space-Saving is inherently sequential; per-element IS the algorithm
                self.update(int(value))
            return
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != values.shape:
            raise ParameterError("weights must have the same shape as values")
        for value, weight in zip(values, weights):  # repro: noqa[R2] -- Space-Saving is inherently sequential; per-element IS the algorithm
            self.update(int(value), float(weight))

    def size_in_counters(self) -> int:
        # value + count + error per slot.
        return 3 * self.capacity

    # -- queries ------------------------------------------------------------------

    def tracked(self) -> list[TrackedCount]:
        """All live counters, by decreasing count (ties by value)."""
        items = sorted(self._counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return [
            TrackedCount(value, count, self._errors[value])
            for value, count in items
        ]

    def estimate(self, value: int) -> float:
        """Frequency upper bound for ``value`` (0 if untracked)."""
        return self._counts.get(value, 0.0)

    def heavy_hitters(self, threshold: float) -> list[TrackedCount]:
        """Counters whose upper bound reaches ``threshold``.

        Complete above ``N / capacity``: a value with true frequency
        ``>= max(threshold, N / capacity)`` is guaranteed to appear.
        """
        if threshold <= 0:
            raise ParameterError(f"threshold must be positive, got {threshold}")
        return [t for t in self.tracked() if t.count >= threshold]

    def dense_candidates(self, threshold: float) -> np.ndarray:
        """Candidate dense values for skimming, ascending ``int64``.

        Deterministic replacement for the COUNTSKETCH/dyadic candidate
        search when the stream is insert-only: superset of all values with
        true frequency ``>= threshold`` whenever
        ``threshold >= stream_size / capacity``.
        """
        values = [t.value for t in self.heavy_hitters(threshold)]
        return np.sort(np.asarray(values, dtype=np.int64))

    def error_bound(self) -> float:
        """Worst-case overestimation of any tracked count (``<= N / capacity``)."""
        if not self._errors:
            return 0.0
        return max(self._errors.values())

    def __repr__(self) -> str:
        return (
            f"SpaceSaving(capacity={self.capacity}, "
            f"tracked={len(self._counts)}, N={self._stream_size:g})"
        )
