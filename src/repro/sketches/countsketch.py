"""COUNTSKETCH top-k heavy hitters (Charikar, Chen, Farach-Colton [8]).

The paper's ``SKIMDENSE`` procedure "is a variant of the COUNTSKETCH
algorithm" (Section 4.2); this module implements the *original* algorithm —
streaming identification of the ``k`` most frequent values — both because
the library should stand alone as a sketching toolkit and because the
top-k tracker gives an online (single-pass, no post-hoc domain scan)
alternative for finding skim candidates.

The tracker pairs a :class:`~repro.sketches.hash_sketch.HashSketch` with a
bounded candidate set: each arriving value's frequency is re-estimated from
the sketch and the candidate set keeps the ``k`` values with the largest
estimates, using a min-heap with lazy invalidation.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING

import numpy as np

from .base import StreamSynopsis
from .hash_sketch import HashSketch, HashSketchSchema
from ..errors import ParameterError

if TYPE_CHECKING:  # type-only: repro.streams imports repro.sketches at runtime
    from ..streams.model import FrequencyVector


class TopKSketch(StreamSynopsis):
    """Streaming top-``k`` frequency tracker over an update stream.

    Parameters
    ----------
    schema:
        Hash-sketch schema providing the estimation backbone.
    k:
        Number of heavy hitters to track.
    """

    def __init__(self, schema: HashSketchSchema, k: int) -> None:
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        self.k = k
        self._sketch = HashSketch(schema)
        self._estimates: dict[int, float] = {}
        # Min-heap of (estimate, value); stale entries are skipped lazily.
        self._heap: list[tuple[float, int]] = []

    # -- synopsis contract ---------------------------------------------------

    @property
    def domain_size(self) -> int:
        """Size of the integer value domain this synopsis covers."""
        return self._sketch.domain_size

    @property
    def sketch(self) -> HashSketch:
        """The underlying hash sketch (shared estimation backbone)."""
        return self._sketch

    def update(self, value: int, weight: float = 1.0) -> None:
        self._sketch.update(value, weight)
        self._consider(value)

    def update_bulk(self, values: np.ndarray, weights: np.ndarray | None = None) -> None:
        """Bulk path: ingest the batch, then re-rank the distinct values seen.

        Equivalent in candidate coverage to element-at-a-time processing of
        the batch (every value that appears is considered against the final
        sketch state, which only improves estimates).
        """
        values = np.asarray(values, dtype=np.int64)
        if values.size == 0:
            return
        self._sketch.update_bulk(values, weights)
        # Top-k candidacy is per-distinct-value dict bookkeeping; the
        # numpy work happened in update_bulk above.
        for value in np.unique(values):  # repro: noqa[R2] -- per-distinct-value dict bookkeeping; numpy work done in update_bulk
            self._consider(int(value))

    def size_in_counters(self) -> int:
        # Sketch counters plus one (value, estimate) slot per tracked item.
        return self._sketch.size_in_counters() + 2 * self.k

    def seed_words(self) -> int:
        return self._sketch.seed_words()

    # -- queries ------------------------------------------------------------------

    def top_k(self) -> list[tuple[int, float]]:
        """Current top-``k`` candidates as ``(value, estimated frequency)``,
        sorted by decreasing estimate (ties broken by value for determinism).
        """
        items = sorted(self._estimates.items(), key=lambda kv: (-kv[1], kv[0]))
        return [(value, est) for value, est in items[: self.k]]

    def candidates(self) -> dict[int, float]:
        """The raw candidate map (may transiently exceed ``k`` never; copy)."""
        return dict(self._estimates)

    def recall_against(self, frequencies: "FrequencyVector") -> float:
        """Fraction of the true top-``k`` values present in :meth:`top_k`.

        Evaluation helper: with enough width the COUNTSKETCH guarantee makes
        this approach 1.
        """
        counts = frequencies.counts
        order = np.argsort(-counts, kind="stable")
        true_top = {int(v) for v in order[: self.k] if counts[v] > 0}
        if not true_top:
            return 1.0
        found = {value for value, _ in self.top_k()}
        return len(true_top & found) / len(true_top)

    # -- internals -------------------------------------------------------------------

    def _consider(self, value: int) -> None:
        """Re-estimate ``value`` and keep it iff it ranks in the top ``k``."""
        estimate = self._sketch.point_estimate(value)
        if value in self._estimates:
            self._estimates[value] = estimate
            heapq.heappush(self._heap, (estimate, value))
            return
        if len(self._estimates) < self.k:
            self._estimates[value] = estimate
            heapq.heappush(self._heap, (estimate, value))
            return
        floor_estimate, floor_value = self._current_floor()
        if estimate > floor_estimate:
            del self._estimates[floor_value]
            heapq.heappop(self._heap)
            self._estimates[value] = estimate
            heapq.heappush(self._heap, (estimate, value))

    def _current_floor(self) -> tuple[float, int]:
        """Smallest live (estimate, value) pair, discarding stale heap entries."""
        while self._heap:
            estimate, value = self._heap[0]
            if self._estimates.get(value) == estimate:
                return estimate, value
            heapq.heappop(self._heap)
        # Heap exhausted by staleness: rebuild from the live map.
        self._heap = [(est, val) for val, est in self._estimates.items()]
        heapq.heapify(self._heap)
        return self._heap[0]

    def __repr__(self) -> str:
        return f"TopKSketch(k={self.k}, sketch={self._sketch!r})"
