"""Synopsis persistence: save/load sketches with their schemas.

A deployed stream processor checkpoints its synopses (process restarts,
node migration, "ship the sketch to the coordinator" patterns — the
natural operations on a linear, mergeable summary).  Persistence must
round-trip the *schema* too: a sketch without its hash/sign families is
just noise, and a restored sketch must remain join-compatible with live
sketches built from the same seed.

Everything is serialised to a flat ``dict`` of JSON-safe scalars and
numpy arrays, written with :func:`numpy.savez_compressed`.  Schemas are
reconstructed from their defining parameters (seeded randomness makes the
families identical), counters are restored verbatim.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, BinaryIO, Union

import numpy as np

from ..core.estimator import SkimmedSketch, SkimmedSketchSchema
from ..errors import ReproError
from .agms import AGMSSchema, AGMSSketch
from .dyadic import DyadicHashSketch, DyadicSketchSchema
from .hash_sketch import HashSketch, HashSketchSchema

#: Format marker embedded in every archive (bump on layout changes).
FORMAT_VERSION = 1

_KIND_HASH = "hash"
_KIND_AGMS = "agms"
_KIND_DYADIC = "dyadic"
_KIND_SKIMMED = "skimmed"

#: Every sketch kind the persistence layer round-trips.
AnySketch = Union[HashSketch, AGMSSketch, DyadicHashSketch, SkimmedSketch]


class SerializationError(ReproError):
    """The archive is missing, malformed, or of an unknown kind/version."""


def _schema_fields(sketch: AnySketch) -> dict[str, Any]:
    """Common schema parameters shared by all sketch kinds."""
    schema = sketch.schema
    return {
        "version": FORMAT_VERSION,
        "width": getattr(schema, "width", 0),
        "depth": getattr(schema, "depth", 0),
        "domain_size": schema.domain_size,
        "seed": schema.seed,
    }


def sketch_state(sketch: AnySketch) -> dict[str, Any]:
    """The complete state of a sketch as a flat, array-valued dict."""
    if isinstance(sketch, HashSketch):
        return {
            **_schema_fields(sketch),
            "kind": _KIND_HASH,
            "counters": sketch.counters.copy(),
            "absolute_mass": sketch.absolute_mass,
        }
    if isinstance(sketch, AGMSSketch):
        return {
            "version": FORMAT_VERSION,
            "kind": _KIND_AGMS,
            "averaging": sketch.schema.averaging,
            "median": sketch.schema.median,
            "domain_size": sketch.schema.domain_size,
            "seed": sketch.schema.seed,
            "counters": sketch.atomic_sketches.copy(),
            "absolute_mass": sketch.absolute_mass,
        }
    if isinstance(sketch, DyadicHashSketch):
        state = {
            **_schema_fields(sketch),
            "kind": _KIND_DYADIC,
            "coarse_cutoff": sketch.schema.coarse_cutoff,
            "num_levels": sketch.schema.num_levels,
        }
        for level in range(sketch.schema.num_levels):
            inner = sketch.level_sketch(level)
            state[f"counters_{level}"] = inner.counters.copy()
            state[f"absolute_mass_{level}"] = inner.absolute_mass
        return state
    if isinstance(sketch, SkimmedSketch):
        inner_state = sketch_state(sketch._inner)  # noqa: SLF001
        inner_state["kind"] = _KIND_SKIMMED
        inner_state["inner_kind"] = (
            _KIND_DYADIC if sketch.schema.dyadic else _KIND_HASH
        )
        inner_state["threshold_multiplier"] = sketch.schema.threshold_multiplier
        return inner_state
    raise SerializationError(f"cannot serialise {type(sketch).__name__}")


def _restore_hash(state: dict[str, Any]) -> HashSketch:
    schema = HashSketchSchema(
        int(state["width"]),
        int(state["depth"]),
        int(state["domain_size"]),
        seed=int(state["seed"]),
    )
    sketch = schema.create_sketch()
    counters = np.asarray(state["counters"], dtype=np.float64)
    if counters.shape != (schema.depth, schema.width):
        raise SerializationError(
            f"counter shape {counters.shape} does not match schema "
            f"({schema.depth}, {schema.width})"
        )
    sketch._counters = counters  # noqa: SLF001
    sketch._absolute_mass = float(state["absolute_mass"])  # noqa: SLF001
    return sketch


def _restore_agms(state: dict[str, Any]) -> AGMSSketch:
    schema = AGMSSchema(
        int(state["averaging"]),
        int(state["median"]),
        int(state["domain_size"]),
        seed=int(state["seed"]),
    )
    sketch = schema.create_sketch()
    counters = np.asarray(state["counters"], dtype=np.float64)
    if counters.shape != (schema.median, schema.averaging):
        raise SerializationError(
            f"counter shape {counters.shape} does not match schema "
            f"({schema.median}, {schema.averaging})"
        )
    sketch._atomic = counters  # noqa: SLF001
    sketch._absolute_mass = float(state["absolute_mass"])  # noqa: SLF001
    return sketch


def _restore_dyadic(state: dict[str, Any]) -> DyadicHashSketch:
    schema = DyadicSketchSchema(
        int(state["width"]),
        int(state["depth"]),
        int(state["domain_size"]),
        seed=int(state["seed"]),
        coarse_cutoff=int(state["coarse_cutoff"]),
    )
    if schema.num_levels != int(state["num_levels"]):
        raise SerializationError(
            f"archive has {state['num_levels']} levels, schema rebuilds "
            f"{schema.num_levels}"
        )
    sketch = schema.create_sketch()
    for level in range(schema.num_levels):
        inner = sketch.level_sketch(level)
        inner._counters = np.asarray(  # noqa: SLF001
            state[f"counters_{level}"], dtype=np.float64
        )
        inner._absolute_mass = float(state[f"absolute_mass_{level}"])  # noqa: SLF001
    return sketch


def _restore_skimmed(state: dict[str, Any]) -> SkimmedSketch:
    schema = SkimmedSketchSchema(
        int(state["width"]),
        int(state["depth"]),
        int(state["domain_size"]),
        seed=int(state["seed"]),
        dyadic=str(state["inner_kind"]) == _KIND_DYADIC,
        threshold_multiplier=float(state["threshold_multiplier"]),
    )
    sketch = schema.create_sketch()
    inner_state = dict(state)
    inner_state["kind"] = str(state["inner_kind"])
    sketch._inner = sketch_from_state(inner_state)  # noqa: SLF001
    return sketch


def sketch_from_state(state: dict[str, Any]) -> AnySketch:
    """Rebuild a sketch (schema included) from :func:`sketch_state` output."""
    version = int(state.get("version", -1))
    if version != FORMAT_VERSION:
        raise SerializationError(f"unsupported archive version {version}")
    kind = str(state.get("kind", ""))
    restorers = {
        _KIND_HASH: _restore_hash,
        _KIND_AGMS: _restore_agms,
        _KIND_DYADIC: _restore_dyadic,
        _KIND_SKIMMED: _restore_skimmed,
    }
    if kind not in restorers:
        raise SerializationError(f"unknown sketch kind {kind!r}")
    return restorers[kind](state)


def sketch_spec(sketch: AnySketch) -> dict[str, Any]:
    """Schema-only construction recipe for a sketch: parameters, no counters.

    A spec is tiny and JSON-safe, which makes it the right thing to ship
    to worker processes: the worker rebuilds an *empty* join-compatible
    sketch via :func:`sketch_from_spec` (seeded randomness makes the hash
    families identical) and accumulates locally — only counter state ever
    travels back.
    """
    if isinstance(sketch, HashSketch):
        return {**_schema_fields(sketch), "kind": _KIND_HASH}
    if isinstance(sketch, AGMSSketch):
        return {
            "version": FORMAT_VERSION,
            "kind": _KIND_AGMS,
            "averaging": sketch.schema.averaging,
            "median": sketch.schema.median,
            "domain_size": sketch.schema.domain_size,
            "seed": sketch.schema.seed,
        }
    if isinstance(sketch, DyadicHashSketch):
        return {
            **_schema_fields(sketch),
            "kind": _KIND_DYADIC,
            "coarse_cutoff": sketch.schema.coarse_cutoff,
            "num_levels": sketch.schema.num_levels,
        }
    if isinstance(sketch, SkimmedSketch):
        return {
            **_schema_fields(sketch),
            "kind": _KIND_SKIMMED,
            "inner_kind": _KIND_DYADIC if sketch.schema.dyadic else _KIND_HASH,
            "threshold_multiplier": sketch.schema.threshold_multiplier,
        }
    raise SerializationError(f"cannot spec {type(sketch).__name__}")


def sketch_from_spec(spec: dict[str, Any]) -> AnySketch:
    """Build a fresh *empty* sketch from :func:`sketch_spec` output."""
    version = int(spec.get("version", -1))
    if version != FORMAT_VERSION:
        raise SerializationError(f"unsupported spec version {version}")
    kind = str(spec.get("kind", ""))
    if kind == _KIND_HASH:
        return HashSketchSchema(
            int(spec["width"]),
            int(spec["depth"]),
            int(spec["domain_size"]),
            seed=int(spec["seed"]),
        ).create_sketch()
    if kind == _KIND_AGMS:
        return AGMSSchema(
            int(spec["averaging"]),
            int(spec["median"]),
            int(spec["domain_size"]),
            seed=int(spec["seed"]),
        ).create_sketch()
    if kind == _KIND_DYADIC:
        schema = DyadicSketchSchema(
            int(spec["width"]),
            int(spec["depth"]),
            int(spec["domain_size"]),
            seed=int(spec["seed"]),
            coarse_cutoff=int(spec["coarse_cutoff"]),
        )
        if schema.num_levels != int(spec["num_levels"]):
            raise SerializationError(
                f"spec has {spec['num_levels']} levels, schema rebuilds "
                f"{schema.num_levels}"
            )
        return schema.create_sketch()
    if kind == _KIND_SKIMMED:
        return SkimmedSketchSchema(
            int(spec["width"]),
            int(spec["depth"]),
            int(spec["domain_size"]),
            seed=int(spec["seed"]),
            dyadic=str(spec["inner_kind"]) == _KIND_DYADIC,
            threshold_multiplier=float(spec["threshold_multiplier"]),
        ).create_sketch()
    raise SerializationError(f"unknown sketch kind {kind!r}")


def merge_sketch_state(sketch: AnySketch, state: dict[str, Any]) -> AnySketch:
    """Merge a serialised sketch state into a live sketch (counter sum).

    Rebuilds the state's sketch (schema and all) and returns
    ``sketch.merged_with(restored)`` — linearity makes the result exactly
    the sketch of both underlying streams concatenated.  Compatibility
    (dimensions *and* seeded randomness) is validated by ``merged_with``;
    a kind mismatch raises :class:`SerializationError`.
    """
    other = sketch_from_state(state)
    if type(other) is not type(sketch):
        raise SerializationError(
            f"cannot merge {state.get('kind')!r} state into "
            f"{type(sketch).__name__}"
        )
    return sketch.merged_with(other)


def save_sketch(sketch: AnySketch, destination: str | Path | BinaryIO) -> None:
    """Persist a sketch (with schema parameters) to an ``.npz`` archive."""
    state = sketch_state(sketch)
    np.savez_compressed(destination, **state)


def load_sketch(source: str | Path | BinaryIO) -> AnySketch:
    """Load a sketch previously written by :func:`save_sketch`.

    The restored sketch is join-compatible with any live sketch built from
    the same schema parameters and seed.
    """
    try:
        with np.load(source, allow_pickle=False) as archive:
            state = {key: archive[key] for key in archive.files}
    except FileNotFoundError:
        raise
    except Exception as error:  # zipfile/numpy raise various types here
        raise SerializationError(f"unreadable sketch archive: {error}") from error
    # Scalars come back as 0-d arrays; unwrap them.
    state = {
        key: value.item() if getattr(value, "ndim", 1) == 0 else value
        for key, value in state.items()
    }
    return sketch_from_state(state)
