"""Basic AGMS ("tug-of-war") sketches and the ESTJOINSIZE estimator.

This is the baseline the paper improves on: the sketch of Alon, Matias and
Szegedy [3] extended to binary joins by Alon et al. [4] (paper Section 2.2,
Figure 2).  A synopsis is an ``median x averaging`` array of *atomic
sketches*; atomic sketch ``(j, i)`` is the random linear projection

    X[j, i] = sum_v f[v] * xi_{j,i}(v)

of the stream's frequency vector onto an independent four-wise independent
±1 family.  Join size is estimated by averaging products of corresponding
atomic sketches within each median group and taking the median across
groups (procedure ``ESTJOINSIZE``); ``ESTSJSIZE`` is the self-join special
case.

Cost profile (what motivates the paper): every stream element touches
**all** ``averaging * median`` atomic sketches, and the worst-case space to
reach a target accuracy is the *square* of the lower bound — both fixed by
the skimmed hash sketches in :mod:`repro.core`.

Two sketches can only be combined if they were created by the same
:class:`AGMSSchema`, which owns the shared sign families.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..errors import IncompatibleSketchError, ParameterError
from ..hashing import FourWiseSignFamily
from .base import StreamSynopsis

if TYPE_CHECKING:  # type-only: repro.streams imports repro.sketches at runtime
    from ..streams.model import FrequencyVector

#: Cap on the size of the (families x values) sign matrix materialised per
#: bulk-ingestion chunk, in elements.  Keeps peak memory around ~128 MB.
_BULK_CHUNK_ELEMENTS = 8_000_000


class AGMSSchema:
    """Shared randomness and shape for a set of join-compatible AGMS sketches.

    Parameters
    ----------
    averaging:
        Paper's ``s1`` — atomic sketches averaged within a median group.
        Controls accuracy (variance shrinks as ``1/averaging``).
    median:
        Paper's ``s2`` — number of independent groups median-selected over.
        Controls confidence (failure probability shrinks exponentially).
    domain_size:
        Size of the value domain streams are declared over.
    seed:
        Seed for the sign families.  Two schemas with equal parameters and
        seed produce interchangeable sketches.
    """

    def __init__(self, averaging: int, median: int, domain_size: int, seed: int = 0) -> None:
        if averaging < 1:
            raise ParameterError(f"averaging must be >= 1, got {averaging}")
        if median < 1:
            raise ParameterError(f"median must be >= 1, got {median}")
        if domain_size < 1:
            raise ParameterError(f"domain_size must be >= 1, got {domain_size}")
        self.averaging = averaging
        self.median = median
        self.domain_size = domain_size
        self.seed = seed
        rng = np.random.default_rng(seed)
        self.signs = FourWiseSignFamily(averaging * median, rng)
        self._projection: np.ndarray | None = None

    def create_sketch(self) -> "AGMSSketch":
        """A fresh empty sketch bound to this schema's sign families."""
        return AGMSSketch(self)

    def sketch_of(self, frequencies: "FrequencyVector") -> "AGMSSketch":
        """Convenience: a sketch pre-loaded with a whole frequency vector."""
        sketch = self.create_sketch()
        sketch.ingest_frequency_vector(frequencies)
        return sketch

    def enable_projection_cache(self, max_bytes: int = 1 << 30) -> None:
        """Precompute the full ±1 projection matrix of this schema.

        The matrix has one ``int8`` entry per (atomic sketch, domain value)
        pair; with it cached, :meth:`AGMSSketch.ingest_frequency_vector`
        becomes a single matrix-vector product instead of re-evaluating the
        sign polynomials.  This is an *experiment-harness* accelerator for
        repeatedly building large sketches over a materialisable domain —
        it trades ``averaging * median * domain_size`` bytes of memory, so
        the size is bounded by ``max_bytes`` (raises ``ValueError`` beyond).
        Results are bit-identical to the streaming path.
        """
        needed = self.signs.count * self.domain_size
        if needed > max_bytes:
            raise ParameterError(
                f"projection cache would need {needed} bytes "
                f"(> max_bytes={max_bytes})"
            )
        if self._projection is not None:
            return
        projection = np.empty((self.signs.count, self.domain_size), dtype=np.int8)
        chunk = max(1, _BULK_CHUNK_ELEMENTS // self.signs.count)
        for start in range(0, self.domain_size, chunk):
            stop = min(start + chunk, self.domain_size)
            values = np.arange(start, stop, dtype=np.int64)
            projection[:, start:stop] = self.signs.signs(values).astype(np.int8)
        self._projection = projection

    def projection_cache_enabled(self) -> bool:
        """True once :meth:`enable_projection_cache` has run."""
        return self._projection is not None

    def is_compatible(self, other: "AGMSSchema") -> bool:
        """True if sketches from ``other`` may be combined with ours."""
        return (
            self.averaging == other.averaging
            and self.median == other.median
            and self.domain_size == other.domain_size
            and self.signs == other.signs
        )

    def __repr__(self) -> str:
        return (
            f"AGMSSchema(averaging={self.averaging}, median={self.median}, "
            f"domain_size={self.domain_size}, seed={self.seed})"
        )


class AGMSSketch(StreamSynopsis):
    """One stream's basic AGMS synopsis (``median x averaging`` atomic sketches)."""

    def __init__(self, schema: AGMSSchema) -> None:
        self._schema = schema
        # Row j is median group j; column i its i-th averaged atomic sketch.
        self._atomic = np.zeros((schema.median, schema.averaging), dtype=np.float64)
        self._absolute_mass = 0.0

    # -- synopsis contract ---------------------------------------------------

    @property
    def schema(self) -> AGMSSchema:
        """The schema (shared randomness) this sketch was created from."""
        return self._schema

    @property
    def domain_size(self) -> int:
        """Size of the integer value domain this synopsis covers."""
        return self._schema.domain_size

    @property
    def atomic_sketches(self) -> np.ndarray:
        """Read-only ``(median, averaging)`` array of atomic sketch values."""
        view = self._atomic.view()
        view.flags.writeable = False
        return view

    @property
    def absolute_mass(self) -> float:
        """Sum of ``|weight|`` over all processed updates (tracked ``N``)."""
        return self._absolute_mass

    def update(self, value: int, weight: float = 1.0) -> None:
        """O(averaging * median): every atomic sketch is touched (paper §2.2)."""
        self._check_value(value)
        signs = self._schema.signs.signs(value)[:, 0]
        self._atomic += weight * signs.reshape(self._atomic.shape)
        self._absolute_mass += abs(weight)

    def update_bulk(self, values: np.ndarray, weights: np.ndarray | None = None) -> None:
        values = np.asarray(values, dtype=np.int64)
        if values.size == 0:
            return
        self._check_value(int(values.min()))
        self._check_value(int(values.max()))
        if weights is None:
            weights = np.ones(values.size)
        else:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != values.shape:
                raise ParameterError("weights must have the same shape as values")
        flat = self._atomic.reshape(-1)
        chunk = max(1, _BULK_CHUNK_ELEMENTS // self._schema.signs.count)
        for start in range(0, values.size, chunk):
            stop = start + chunk
            signs = self._schema.signs.signs(values[start:stop])
            flat += signs @ weights[start:stop]
        self._absolute_mass += float(np.abs(weights).sum())

    def update_coalesced(
        self,
        values: np.ndarray,
        masses: np.ndarray,
        observed_mass: float | None = None,
    ) -> None:
        """Ingest a pre-coalesced batch: distinct ``values``, summed ``masses``.

        Mirrors :meth:`HashSketch.update_coalesced` for callers that
        coalesce once and feed many sketches (the shared-memory shard
        workers).  ``observed_mass`` defaults to ``sum(|masses|)``;
        passing the original batch's ``sum(|weight|)`` keeps
        :attr:`absolute_mass` identical to element-wise ingestion.
        Records no metrics or spans — the caller owns instrumentation.
        """
        values = np.asarray(values, dtype=np.int64)
        masses = np.asarray(masses, dtype=np.float64)
        if masses.shape != values.shape:
            raise ParameterError("masses must have the same shape as values")
        if values.size == 0:
            return
        self._check_value(int(values.min()))
        self._check_value(int(values.max()))
        flat = self._atomic.reshape(-1)
        chunk = max(1, _BULK_CHUNK_ELEMENTS // self._schema.signs.count)
        for start in range(0, values.size, chunk):
            stop = start + chunk
            signs = self._schema.signs.signs(values[start:stop])
            flat += signs @ masses[start:stop]
        self._absolute_mass += (
            float(np.abs(masses).sum()) if observed_mass is None
            else float(observed_mass)
        )

    def ingest_frequency_vector(self, frequencies: "FrequencyVector") -> None:
        """Absorb a whole frequency vector.

        Uses the schema's projection cache (one matrix-vector product) when
        enabled — see :meth:`AGMSSchema.enable_projection_cache` — and the
        generic chunked bulk path otherwise; the two are numerically
        identical.
        """
        projection = self._schema._projection
        if projection is None:
            super().ingest_frequency_vector(frequencies)
            return
        if frequencies.domain_size != self.domain_size:
            raise ParameterError(
                f"domain mismatch: synopsis {self.domain_size}, "
                f"vector {frequencies.domain_size}"
            )
        counts = frequencies.counts
        flat = self._atomic.reshape(-1)
        # Chunk over atomic sketches to bound the float32 conversion buffer.
        chunk = max(1, _BULK_CHUNK_ELEMENTS // self.domain_size)
        for start in range(0, projection.shape[0], chunk):
            stop = start + chunk
            flat[start:stop] += projection[start:stop].astype(np.float32) @ counts
        self._absolute_mass += float(np.abs(counts).sum())

    def size_in_counters(self) -> int:
        return int(self._atomic.size)

    def seed_words(self) -> int:
        return self._schema.signs.state_words()

    # -- estimation (paper Figure 2) ------------------------------------------

    def est_join_size(self, other: "AGMSSketch") -> float:
        """Procedure ``ESTJOINSIZE``: binary-join size estimate from two sketches.

        For each median group ``j``, average the products of corresponding
        atomic sketches, then return the median across groups (Theorem 2
        gives the ``+/- 2 sqrt(SJ(f) SJ(g) / averaging)`` error bound).
        """
        self._check_compatible(other)
        group_means = np.mean(self._atomic * other._atomic, axis=1)
        return float(np.median(group_means))

    def est_self_join_size(self) -> float:
        """Procedure ``ESTSJSIZE``: second-moment (self-join size) estimate."""
        return self.est_join_size(self)

    def join_error_bound(self, other: "AGMSSketch") -> float:
        """Estimated maximum additive error of :meth:`est_join_size`.

        Theorem 2: ``2 sqrt(SJ(f) SJ(g) / averaging)``, with the self-join
        sizes estimated from the sketches themselves.
        """
        self._check_compatible(other)
        sj_product = max(self.est_self_join_size(), 0.0) * max(
            other.est_self_join_size(), 0.0
        )
        return float(2.0 * np.sqrt(sj_product / self._schema.averaging))

    # -- algebra (sketches are linear projections) -----------------------------

    def merged_with(self, other: "AGMSSketch") -> "AGMSSketch":
        """Sketch of the concatenation of both underlying streams."""
        self._check_compatible(other)
        result = AGMSSketch(self._schema)
        result._atomic = self._atomic + other._atomic
        result._absolute_mass = self._absolute_mass + other._absolute_mass
        return result

    def copy(self) -> "AGMSSketch":
        """Independent deep copy."""
        result = AGMSSketch(self._schema)
        result._atomic = self._atomic.copy()
        result._absolute_mass = self._absolute_mass
        return result

    # -- external counter storage (shared-memory seam) --------------------------

    def counters_view(self) -> list[np.ndarray]:
        """Writable view of the raw atomic-sketch block (a single entry)."""
        return [self._atomic]

    def attach_counters(self, buffers: list[np.ndarray]) -> None:
        """Re-home the atomic sketches into a caller-provided buffer.

        See :meth:`HashSketch.attach_counters`: copies current state in
        and rebinds, preserving the projection bit-for-bit.
        """
        if len(buffers) != 1:
            raise ParameterError(
                f"AGMSSketch.attach_counters takes exactly 1 buffer, "
                f"got {len(buffers)}"
            )
        buffer = buffers[0]
        if buffer.shape != self._atomic.shape or buffer.dtype != np.float64:
            raise ParameterError(
                f"attach_counters needs a float64 buffer of shape "
                f"{self._atomic.shape}, got {buffer.dtype} {buffer.shape}"
            )
        buffer[...] = self._atomic
        self._atomic = buffer

    def tracked_masses(self) -> list[float]:
        """Tracked ``sum |weight|`` per counter block (a single entry)."""
        return [self._absolute_mass]

    def set_tracked_masses(self, masses: list[float]) -> None:
        """Install the tracked mass captured by :meth:`tracked_masses`."""
        if len(masses) != 1:
            raise ParameterError(
                f"AGMSSketch.set_tracked_masses takes exactly 1 mass, "
                f"got {len(masses)}"
            )
        self._absolute_mass = float(masses[0])

    # -- internals ---------------------------------------------------------------

    def _check_value(self, value: int) -> None:
        if not 0 <= value < self.domain_size:
            from ..errors import DomainError

            raise DomainError(f"value {value} outside domain [0, {self.domain_size})")

    def _check_compatible(self, other: "AGMSSketch") -> None:
        if not isinstance(other, AGMSSketch):
            raise IncompatibleSketchError(
                f"cannot combine AGMSSketch with {type(other).__name__}"
            )
        if other._schema is not self._schema and not self._schema.is_compatible(
            other._schema
        ):
            raise IncompatibleSketchError(
                "sketches come from different AGMS schemas (randomness differs)"
            )

    def __repr__(self) -> str:
        return (
            f"AGMSSketch(averaging={self._schema.averaging}, "
            f"median={self._schema.median}, N={self._absolute_mass:g})"
        )
