"""Common synopsis interface shared by every stream summary in the library.

The stream query-processing architecture of the paper (Figure 1) maintains
one small synopsis per stream, fed one element at a time, and later
combines synopses to answer aggregate queries.  :class:`StreamSynopsis`
captures the per-stream maintenance contract; estimation entry points
(join size, point queries, ...) are defined by the concrete classes since
they differ per synopsis type.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Iterable

import numpy as np
from ..errors import ParameterError

if TYPE_CHECKING:  # type-only: repro.streams imports repro.sketches at runtime
    from ..streams.model import FrequencyVector, Update


class StreamSynopsis(abc.ABC):
    """A one-pass, bounded-memory summary of a single update stream."""

    @property
    @abc.abstractmethod
    def domain_size(self) -> int:
        """Size of the integer value domain the synopsis is declared over."""

    @abc.abstractmethod
    def update(self, value: int, weight: float = 1.0) -> None:
        """Process one stream element (``weight=-1`` deletes an occurrence)."""

    @abc.abstractmethod
    def update_bulk(self, values: np.ndarray, weights: np.ndarray | None = None) -> None:
        """Process a batch of elements; semantically ``update`` in a loop.

        Synopses in this library are linear projections, so the bulk path
        is mathematically identical to element-at-a-time maintenance; it
        exists because the evaluation harness feeds millions of updates.
        """

    @abc.abstractmethod
    def size_in_counters(self) -> int:
        """Number of counter words the synopsis stores (paper's "space in words").

        Excludes the ``O(log)`` hash-seed state, matching how the paper
        reports space; seed words are available via :meth:`seed_words`.
        """

    def seed_words(self) -> int:
        """Machine words of hash/seed state (0 for seed-free synopses)."""
        return 0

    def consume(self, updates: Iterable["Update"]) -> None:
        """Feed a finite update stream through :meth:`update`."""
        for item in updates:
            self.update(item.value, item.weight)

    def ingest_frequency_vector(self, frequencies: "FrequencyVector") -> None:
        """Absorb a whole frequency vector (bulk path over the support)."""
        if frequencies.domain_size != self.domain_size:
            raise ParameterError(
                f"domain mismatch: synopsis {self.domain_size}, "
                f"vector {frequencies.domain_size}"
            )
        support = frequencies.support()
        if support.size:
            self.update_bulk(support, frequencies.counts[support])
