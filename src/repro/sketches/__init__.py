"""Sketch synopses: basic AGMS, hash sketches, COUNTSKETCH top-k, dyadic
hierarchies.

These are the stream summaries of Sections 2.2 and 4.1-4.2 of the paper.
The skimmed-sketch join estimator itself lives in :mod:`repro.core` and is
built on top of :class:`HashSketch` / :class:`DyadicHashSketch`.
"""

from .base import StreamSynopsis
from .agms import AGMSSchema, AGMSSketch
from .hash_sketch import HashSketch, HashSketchSchema
from .countsketch import TopKSketch
from .dyadic import DyadicHashSketch, DyadicSketchSchema
from .spacesaving import SpaceSaving, TrackedCount

__all__ = [
    "StreamSynopsis",
    "AGMSSchema",
    "AGMSSketch",
    "HashSketch",
    "HashSketchSchema",
    "SpaceSaving",
    "TopKSketch",
    "TrackedCount",
    "DyadicHashSketch",
    "DyadicSketchSchema",
]
