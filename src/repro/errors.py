"""Exception hierarchy for the skimmed-sketch library.

All library-raised errors derive from :class:`ReproError`, so callers can
catch one type at an API boundary.  Programming mistakes (wrong types,
out-of-range parameters) still raise the standard ``TypeError`` /
``ValueError`` where that is the idiomatic choice.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the library."""


class IncompatibleSketchError(ReproError):
    """Two synopses that must share randomness or shape do not.

    Join estimation combines sketches *pairwise per bucket/atomic sketch*;
    that only has the right expectation when both sketches were built from
    the same schema (identical hash and sign families) and have the same
    dimensions.  Mixing sketches from different schemas is a silent
    correctness bug, so it is detected and rejected eagerly.
    """


class DomainError(ReproError):
    """A stream element falls outside the synopsis' declared domain."""


class DeletionUnsupportedError(ReproError):
    """A synopsis that cannot process deletions received one.

    Random-sample summaries are the canonical example (Section 2 of the
    paper: "a sequence of deletions can easily deplete the maintained
    sample"); sketches never raise this.
    """


class QueryError(ReproError):
    """A stream query is malformed or references unknown streams/synopses."""
