"""Exception hierarchy for the skimmed-sketch library.

All library-raised errors derive from :class:`ReproError`, so callers can
catch one type at an API boundary.  Parameter-validation failures raise
:class:`ParameterError`, which also subclasses ``ValueError`` so code (and
tests) written against the standard idiom keep working; wrong *types* still
raise the standard ``TypeError``.  The ``repro.analysis`` linter (rule R5)
enforces that library code never raises a bare ``ValueError`` and never
relies on ``assert`` for validation (asserts vanish under ``python -O``).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the library."""


class ParameterError(ReproError, ValueError):
    """An argument or constructor parameter is out of range or malformed.

    Subclasses both :class:`ReproError` (so one ``except ReproError`` guards
    a whole API boundary) and :class:`ValueError` (so callers using the
    standard-library idiom — and the pre-existing test suite — continue to
    catch it).
    """


class IncompatibleSketchError(ReproError):
    """Two synopses that must share randomness or shape do not.

    Join estimation combines sketches *pairwise per bucket/atomic sketch*;
    that only has the right expectation when both sketches were built from
    the same schema (identical hash and sign families) and have the same
    dimensions.  Mixing sketches from different schemas is a silent
    correctness bug, so it is detected and rejected eagerly.
    """


class DomainError(ReproError):
    """A stream element falls outside the synopsis' declared domain."""


class DeletionUnsupportedError(ReproError):
    """A synopsis that cannot process deletions received one.

    Random-sample summaries are the canonical example (Section 2 of the
    paper: "a sequence of deletions can easily deplete the maintained
    sample"); sketches never raise this.
    """


class QueryError(ReproError):
    """A stream query is malformed or references unknown streams/synopses."""
