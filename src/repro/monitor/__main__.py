"""CLI for the estimate-quality monitor.

Serve audits + metrics over HTTP (files from an audited run, or the
empty live registries of this process)::

    python -m repro.monitor serve --metrics metrics.json \\
        --audits audits.jsonl --profile run.prof.jsonl \\
        --timeseries run.ts.jsonl --port 8000

Then scrape ``http://127.0.0.1:8000/metrics`` (Prometheus exposition),
``/health``, ``/audits``, ``/snapshot``, ``/profile``, ``/timeseries``
— or open ``/dashboard`` in a browser for the sparkline +
hottest-frames view.

One-shot scrape round trip (what ``make monitor-smoke`` runs): start the
server on an ephemeral port, scrape every endpoint, check the exposition
parses and at least one audit is served, then exit::

    python -m repro.monitor selfcheck --metrics metrics.json \\
        --audits audits.jsonl
"""

from __future__ import annotations

import argparse
import json
import sys
import urllib.request

from .audit import audit_from_dict
from .service import MonitorServer, file_source, parse_prometheus


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.monitor",
        description="Serve and check estimate-quality audits.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser(
        "serve",
        help="serve /metrics, /health, /audits, /snapshot, /profile, "
        "/timeseries, /dashboard",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8000, help="TCP port (0 = ephemeral)"
    )
    serve.add_argument(
        "--metrics", metavar="PATH", help="metrics snapshot JSON (--metrics-out file)"
    )
    serve.add_argument(
        "--audits", metavar="PATH", help="audit JSONL (--audit-out file)"
    )
    serve.add_argument(
        "--profile", metavar="PATH", help="profile JSONL (--profile-out file)"
    )
    serve.add_argument(
        "--timeseries",
        metavar="PATH",
        help="flight-recorder JSONL (--timeseries-out file)",
    )
    serve.add_argument(
        "--prefix", default="repro", help="Prometheus name prefix (default: repro)"
    )
    serve.add_argument(
        "--federate",
        metavar="ORIGIN=PATH_OR_URL",
        action="append",
        default=None,
        help="federate a telemetry/metrics source under this origin "
        "(repeatable); /metrics becomes an origin-labelled multi-source "
        "exposition and /topology reports the fleet",
    )

    selfcheck = sub.add_parser(
        "selfcheck",
        help="serve on an ephemeral port, scrape every endpoint, exit 0/1",
    )
    selfcheck.add_argument("--metrics", metavar="PATH", help="metrics snapshot JSON")
    selfcheck.add_argument("--audits", metavar="PATH", help="audit JSONL")
    selfcheck.add_argument("--profile", metavar="PATH", help="profile JSONL")
    selfcheck.add_argument(
        "--timeseries", metavar="PATH", help="flight-recorder JSONL"
    )
    selfcheck.add_argument(
        "--min-audits",
        type=int,
        default=1,
        help="require at least this many served audits (default: 1)",
    )
    selfcheck.add_argument(
        "--federate",
        metavar="ORIGIN=PATH_OR_URL",
        action="append",
        default=None,
        help="also check the federated /metrics exposition (origin labels) "
        "and the /topology endpoint over these sources (repeatable)",
    )
    return parser


def _build_federation(specs: list[str] | None):
    """Resolve ``--federate`` specs into a ``FederatedSource`` (or None)."""
    if not specs:
        return None
    try:
        from ..federate import federation_from_args
    except ImportError:  # standalone layout: `federate` next to `monitor`
        from federate import federation_from_args  # type: ignore
    return federation_from_args(specs)


def _get(url: str) -> tuple[int, str]:
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.status, resp.read().decode("utf-8")


def _selfcheck(args: argparse.Namespace) -> int:
    try:
        source = file_source(
            args.metrics, args.audits, args.profile, args.timeseries
        )
        federation = _build_federation(args.federate)
    except (OSError, ValueError) as exc:
        print(f"error: cannot load inputs: {exc}", file=sys.stderr)
        return 1
    with MonitorServer(source, port=0, federation=federation) as server:
        failures: list[str] = []

        status, body = _get(f"{server.url}/metrics")
        samples = []
        if status != 200:
            failures.append(f"/metrics returned {status}")
        else:
            try:
                samples = parse_prometheus(body)
            except ValueError as exc:
                failures.append(f"/metrics exposition invalid: {exc}")
        if not samples and not failures:
            failures.append("/metrics served no samples")
        if federation is not None and not failures:
            for origin in federation.origins:
                label = f'origin="{origin}"'
                if not any(label in name for name, _ in samples):
                    failures.append(
                        f"/metrics has no samples labelled {label}"
                    )

        status, body = _get(f"{server.url}/topology")
        if status != 200 or json.loads(body).get("kind") != "repro.topology":
            failures.append(f"/topology not a topology document (status {status})")
        elif federation is not None:
            origins = json.loads(body).get("origins", {})
            for origin in federation.origins:
                row = origins.get(origin)
                if row is None:
                    failures.append(f"/topology is missing origin {origin!r}")
                elif not row.get("ok"):
                    failures.append(
                        f"/topology reports origin {origin!r} down: "
                        f"{row.get('error')}"
                    )

        status, body = _get(f"{server.url}/health")
        if status != 200 or json.loads(body).get("status") != "ok":
            failures.append(f"/health not ok (status {status}: {body.strip()})")

        status, body = _get(f"{server.url}/audits")
        audits = []
        if status != 200:
            failures.append(f"/audits returned {status}")
        else:
            payload = json.loads(body)
            try:
                audits = [audit_from_dict(a) for a in payload.get("audits", [])]
            except ValueError as exc:
                failures.append(f"/audits schema invalid: {exc}")
        if len(audits) < args.min_audits and not failures:
            failures.append(
                f"/audits served {len(audits)} audits "
                f"(need >= {args.min_audits})"
            )

        status, body = _get(f"{server.url}/snapshot")
        if status != 200 or json.loads(body).get("version") != 1:
            failures.append(f"/snapshot not a version-1 snapshot (status {status})")

        status, body = _get(f"{server.url}/profile")
        if status != 200 or json.loads(body).get("kind") != "repro.profile":
            failures.append(f"/profile not a profile snapshot (status {status})")

        status, body = _get(f"{server.url}/timeseries")
        if status != 200 or json.loads(body).get("kind") != "repro.timeseries":
            failures.append(
                f"/timeseries not a timeseries snapshot (status {status})"
            )

        status, body = _get(f"{server.url}/dashboard")
        if status != 200 or "repro monitor" not in body:
            failures.append(f"/dashboard did not render (status {status})")

    if failures:
        for failure in failures:
            print(f"selfcheck FAILED: {failure}", file=sys.stderr)
        return 1
    bound_ok = sum(1 for a in audits if a.residual_bound_ok)
    covered = [a for a in audits if a.covered is not None]
    print(
        f"selfcheck ok: {len(samples)} metric samples, {len(audits)} audits "
        f"({bound_ok} residual-bound ok, "
        f"{sum(1 for a in covered if a.covered)}/{len(covered)} shadow-covered)"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(sys.argv[1:] if argv is None else argv)
    if args.command == "selfcheck":
        return _selfcheck(args)
    # serve
    try:
        source = file_source(
            args.metrics, args.audits, args.profile, args.timeseries
        )
        federation = _build_federation(args.federate)
    except (OSError, ValueError) as exc:
        print(f"error: cannot load inputs: {exc}", file=sys.stderr)
        return 1
    server = MonitorServer(
        source,
        host=args.host,
        port=args.port,
        prefix=args.prefix,
        federation=federation,
    )
    server.start()
    federated = (
        f", federating {len(federation.origins)} origins" if federation else ""
    )
    print(
        f"serving on {server.url} (endpoints: /metrics /health /audits "
        f"/snapshot /profile /timeseries /topology /dashboard{federated})"
    )
    try:
        while True:
            server._thread.join(1.0)  # noqa: SLF001 - interruptible wait
    except KeyboardInterrupt:
        print("shutting down")
        server.stop()
    return 0


if __name__ == "__main__":
    sys.exit(main())
