"""Live monitoring HTTP surface: metrics, audits, profiles, dashboard.

``python -m repro.monitor serve`` turns a (running or finished) audited
experiment into something scrapeable like a production service:

* ``/metrics`` — Prometheus text exposition of the metrics snapshot via
  the existing ``repro.obs`` exporter, with monitor-level gauges
  (``monitor.audits.recorded``, ``monitor.audits.retained``,
  ``monitor.drift.alerts``, ``monitor.audit.last_realized_error``, …)
  merged in;
* ``/health`` — liveness JSON (status, audit/alert counts);
* ``/audits`` — the most recent :class:`QueryAudit` records as JSON
  (``?n=`` limits the count; any other query parameter is a 400);
* ``/snapshot`` — the raw metrics snapshot JSON, for ``repro.obs diff``;
* ``/profile`` — the ``repro.profile`` sample snapshot JSON;
* ``/timeseries`` — the flight-recorder telemetry snapshot JSON;
* ``/dashboard`` — a self-contained HTML page (inline SVG sparklines
  for throughput/error/coverage plus the hottest profiled frames),
  rendered by :mod:`repro.monitor.dashboard` with no external assets.

Every endpoint also answers ``HEAD`` (headers only, correct
``Content-Length``), and every response carries an explicit
``Content-Length`` so curl/Prometheus never wait on a silent EOF.

The server reads through a :class:`MonitorSource`, so the same handler
serves the **live** process registries (``repro.obs.METRICS`` /
``repro.monitor.AUDIT`` / ``repro.profile.PROFILER``/``RECORDER``) or
**files** written by ``--metrics-out`` / ``--audit-out`` /
``--profile-out`` / ``--timeseries-out`` — the latter is what ``make
monitor-smoke`` scrapes.

Imports are stdlib plus ``repro.obs.export`` (itself stdlib-only); the
``except ImportError`` fallback lets the module load when ``repro``'s
numpy-importing package root is unavailable (tests run it with bare
``obs`` / ``monitor`` on ``sys.path`` to enforce the no-numpy contract).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable
from urllib.parse import parse_qs, urlparse

try:  # pragma: no cover - exercised via the standalone import test
    from ..obs.export import snapshot_to_prometheus, validate_snapshot
except ImportError:  # standalone import: `obs` next to `monitor` on sys.path
    from obs.export import snapshot_to_prometheus, validate_snapshot  # type: ignore

from .audit import AuditLog, read_audit_jsonl

#: Empty version-1 metrics snapshot (served when no metrics source exists).
EMPTY_SNAPSHOT: dict[str, Any] = {
    "version": 1,
    "counters": {},
    "gauges": {},
    "histograms": {},
}

#: Empty version-1 profile snapshot (served when no profile source exists).
EMPTY_PROFILE: dict[str, Any] = {
    "version": 1,
    "kind": "repro.profile",
    "hz": 0.0,
    "dropped": 0,
    "samples": [],
}

#: Empty version-1 timeseries snapshot (served when no recorder exists).
EMPTY_TIMESERIES: dict[str, Any] = {
    "version": 1,
    "kind": "repro.timeseries",
    "interval": 0.0,
    "pushed": 0,
    "aged": 0,
    "frames": [],
}


class MonitorSource:
    """What the HTTP handlers read: four snapshot thunks.

    ``metrics_snapshot`` returns a version-1 metrics snapshot dict;
    ``audit_snapshot`` an :meth:`AuditLog.snapshot` dict;
    ``profile_snapshot`` / ``timeseries_snapshot`` the ``repro.profile``
    sampler/recorder snapshots (both optional — they default to empty
    documents so a metrics-only deployment needs no profiler).  All are
    called per request, so live sources always serve fresh state.
    """

    def __init__(
        self,
        metrics_snapshot: Callable[[], dict[str, Any]],
        audit_snapshot: Callable[[], dict[str, Any]],
        profile_snapshot: Callable[[], dict[str, Any]] | None = None,
        timeseries_snapshot: Callable[[], dict[str, Any]] | None = None,
    ) -> None:
        self.metrics_snapshot = metrics_snapshot
        self.audit_snapshot = audit_snapshot
        self.profile_snapshot = profile_snapshot or (lambda: dict(EMPTY_PROFILE))
        self.timeseries_snapshot = timeseries_snapshot or (
            lambda: dict(EMPTY_TIMESERIES)
        )


def live_source() -> MonitorSource:
    """Source backed by the process-wide ``METRICS``, ``AUDIT``,
    ``PROFILER`` and ``RECORDER``."""
    try:
        from ..obs import METRICS
    except ImportError:  # standalone layout (see module docstring)
        from obs import METRICS  # type: ignore
    try:
        from . import AUDIT
    except ImportError:
        from monitor import AUDIT  # type: ignore
    try:
        from ..profile import PROFILER, RECORDER
    except ImportError:  # standalone layout: shadows stdlib `profile`
        from profile import PROFILER, RECORDER  # type: ignore
    return MonitorSource(
        METRICS.snapshot, AUDIT.snapshot, PROFILER.snapshot, RECORDER.snapshot
    )


def file_source(
    metrics_path: str | None = None,
    audits_path: str | None = None,
    profile_path: str | None = None,
    timeseries_path: str | None = None,
) -> MonitorSource:
    """Source backed by ``--metrics-out`` / ``--audit-out`` /
    ``--profile-out`` / ``--timeseries-out`` files.

    Files are read once, eagerly, so a bad path fails at startup rather
    than mid-scrape; raises ``ValueError`` / ``OSError`` on bad input.
    """
    if metrics_path is not None:
        with open(metrics_path, encoding="utf-8") as fh:
            snapshot = validate_snapshot(json.load(fh))
    else:
        snapshot = dict(EMPTY_SNAPSHOT)
    log = AuditLog(enabled=True)
    if audits_path is not None:
        audits, alerts = read_audit_jsonl(audits_path)
        for audit in audits:
            log.record(audit)
        for alert in alerts:
            log.alert(_DictAlert(alert))
    log.disable()
    if profile_path is not None:
        profile_doc = _read_profile_jsonl(profile_path)
    else:
        profile_doc = dict(EMPTY_PROFILE)
    if timeseries_path is not None:
        timeseries_doc = _read_timeseries_jsonl(timeseries_path)
    else:
        timeseries_doc = dict(EMPTY_TIMESERIES)
    return MonitorSource(
        lambda: snapshot,
        log.snapshot,
        lambda: profile_doc,
        lambda: timeseries_doc,
    )


def _read_profile_jsonl(path: str) -> dict[str, Any]:
    try:
        from ..profile import read_profile_jsonl
    except ImportError:  # standalone layout (see module docstring)
        from profile import read_profile_jsonl  # type: ignore
    return read_profile_jsonl(path)


def _read_timeseries_jsonl(path: str) -> dict[str, Any]:
    try:
        from ..profile import read_timeseries_jsonl
    except ImportError:
        from profile import read_timeseries_jsonl  # type: ignore
    return read_timeseries_jsonl(path)


class _DictAlert:
    """Re-wraps an alert dict read back from JSONL for ``AuditLog``."""

    def __init__(self, data: dict[str, Any]) -> None:
        self._data = data

    def as_dict(self) -> dict[str, Any]:
        """The original wire dict, unchanged."""
        return self._data


def _read_stable(read: Callable[[], dict[str, Any]]) -> dict[str, Any]:
    """Call a snapshot thunk, retrying the transient ``RuntimeError`` a
    lock-free live registry raises when a hot path inserts a brand-new
    metric mid-iteration.  Retries settle it in practice (the name set
    stabilises after warm-up); the final attempt propagates so a truly
    broken source still surfaces as a 500.
    """
    for _ in range(5):
        try:
            return read()
        except RuntimeError:
            continue
    return read()


def _stable_source(source: MonitorSource) -> MonitorSource:
    """A view of ``source`` whose thunks read through :func:`_read_stable`."""
    return MonitorSource(
        lambda: _read_stable(source.metrics_snapshot),
        lambda: _read_stable(source.audit_snapshot),
        lambda: _read_stable(source.profile_snapshot),
        lambda: _read_stable(source.timeseries_snapshot),
    )


def merged_metrics_snapshot(source: MonitorSource) -> dict[str, Any]:
    """Metrics snapshot with monitor-level gauges merged in.

    The audit ring is summarised as gauges so one ``/metrics`` scrape
    carries both the engine metrics and the estimate-quality state.
    """
    snapshot = source.metrics_snapshot()
    audits = source.audit_snapshot()
    merged = {
        "version": snapshot.get("version", 1),
        "counters": dict(snapshot.get("counters", {})),
        "gauges": dict(snapshot.get("gauges", {})),
        "histograms": dict(snapshot.get("histograms", {})),
    }
    records = audits.get("audits", [])
    merged["gauges"]["monitor.audits.recorded"] = float(audits.get("recorded", 0))
    merged["gauges"]["monitor.audits.retained"] = float(len(records))
    merged["gauges"]["monitor.audits.evicted"] = float(audits.get("evicted", 0))
    merged["gauges"]["monitor.drift.alerts"] = float(len(audits.get("alerts", [])))
    if records:
        last = records[-1]
        for field, metric in (
            ("estimate", "monitor.audit.last_estimate"),
            ("ci_halfwidth", "monitor.audit.last_ci_halfwidth"),
            ("realized_error", "monitor.audit.last_realized_error"),
        ):
            value = last.get(field)
            if isinstance(value, (int, float)):
                merged["gauges"][metric] = float(value)
        bound_ok = [r.get("residual_bound_ok") for r in records]
        merged["gauges"]["monitor.audit.residual_bound_ok_fraction"] = sum(
            1.0 for b in bound_ok if b
        ) / len(records)
        covered = [r.get("covered") for r in records if r.get("covered") is not None]
        if covered:
            merged["gauges"]["monitor.audit.ci_coverage"] = sum(
                1.0 for c in covered if c
            ) / len(covered)
    return merged


def parse_prometheus(text: str) -> list[tuple[str, float]]:
    """Parse text exposition into ``(sample_name, value)`` pairs.

    A deliberately strict little parser (used by ``selfcheck`` and the
    tests): every non-comment, non-blank line must be
    ``name[{labels}] value``; raises ``ValueError`` otherwise.
    """
    samples: list[tuple[str, float]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.rsplit(" ", 1)
        if len(parts) != 2:
            raise ValueError(f"line {lineno}: not 'name value': {line!r}")
        name, raw = parts
        try:
            value = float(raw.replace("+Inf", "inf").replace("-Inf", "-inf"))
        except ValueError:
            raise ValueError(f"line {lineno}: bad sample value {raw!r}") from None
        samples.append((name, value))
    return samples


class _MonitorHandler(BaseHTTPRequestHandler):
    """Request handler for the monitoring endpoints (quiet by default)."""

    server_version = "repro-monitor/1"
    source: MonitorSource  # attached by MonitorServer
    prefix = "repro"
    # Optional repro.federate.FederatedSource (attached by MonitorServer):
    # /metrics becomes the origin-labelled federated exposition and
    # /topology reports the fleet.  Typed loosely so this module keeps
    # loading standalone without the federate package on sys.path.
    federation: Any = None

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        """Dispatch ``/metrics``, ``/health``, ``/audits``, ``/snapshot``,
        ``/profile``, ``/timeseries``, ``/topology``, ``/dashboard``."""
        url = urlparse(self.path)
        source = _stable_source(self.source)
        try:
            if url.path == "/metrics":
                if self.federation is not None:
                    body = self.federation.prometheus(prefix=self.prefix)
                else:
                    body = snapshot_to_prometheus(
                        merged_metrics_snapshot(source), prefix=self.prefix
                    )
                self._reply(200, body, "text/plain; version=0.0.4; charset=utf-8")
            elif url.path == "/topology":
                if self.federation is not None:
                    payload = self.federation.topology()
                else:
                    payload = {"version": 1, "kind": "repro.topology", "origins": {}}
                self._reply(200, json.dumps(payload), "application/json")
            elif url.path == "/health":
                audits = source.audit_snapshot()
                payload = {
                    "status": "ok",
                    "audits": len(audits.get("audits", [])),
                    "recorded": audits.get("recorded", 0),
                    "alerts": len(audits.get("alerts", [])),
                }
                self._reply(200, json.dumps(payload), "application/json")
            elif url.path == "/audits":
                query = parse_qs(url.query, keep_blank_values=True)
                unknown = sorted(set(query) - {"n"})
                if unknown:
                    self._reply(
                        400,
                        f"unknown query parameter(s): {', '.join(unknown)}\n",
                        "text/plain",
                    )
                    return
                audits = source.audit_snapshot()
                if "n" in query:
                    try:
                        limit = max(0, int(query["n"][0]))
                    except ValueError:
                        self._reply(400, "bad ?n= parameter\n", "text/plain")
                        return
                    audits = dict(audits)
                    audits["audits"] = audits["audits"][-limit:] if limit else []
                self._reply(200, json.dumps(audits), "application/json")
            elif url.path == "/snapshot":
                self._reply(
                    200, json.dumps(source.metrics_snapshot()), "application/json"
                )
            elif url.path == "/profile":
                self._reply(
                    200, json.dumps(source.profile_snapshot()), "application/json"
                )
            elif url.path == "/timeseries":
                self._reply(
                    200,
                    json.dumps(source.timeseries_snapshot()),
                    "application/json",
                )
            elif url.path == "/dashboard":
                from .dashboard import render_dashboard

                self._reply(
                    200,
                    render_dashboard(source, federation=self.federation),
                    "text/html; charset=utf-8",
                )
            else:
                self._reply(404, f"no such endpoint: {url.path}\n", "text/plain")
        except Exception as exc:  # defensive: a scrape must never kill the server
            self._reply(500, f"internal error: {exc}\n", "text/plain")

    def do_HEAD(self) -> None:  # noqa: N802 - http.server API
        """Same dispatch as GET; ``_reply`` omits the body for HEAD."""
        self.do_GET()

    def _reply(self, status: int, body: str, content_type: str) -> None:
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        if self.command != "HEAD":
            self.wfile.write(data)

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        """Silence per-request stderr logging (scrapes are frequent)."""


class MonitorServer:
    """A threaded HTTP server wrapping :class:`_MonitorHandler`.

    ``port=0`` binds an ephemeral port (the bound port is available as
    ``.port`` after :meth:`start`).  The server runs on a daemon thread;
    call :meth:`stop` to shut it down deterministically.
    """

    def __init__(
        self,
        source: MonitorSource,
        host: str = "127.0.0.1",
        port: int = 0,
        prefix: str = "repro",
        federation: Any = None,
    ) -> None:
        handler = type(
            "_BoundMonitorHandler",
            (_MonitorHandler,),
            {"source": source, "prefix": prefix, "federation": federation},
        )
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        """Bound host address."""
        return str(self._httpd.server_address[0])

    @property
    def port(self) -> int:
        """Bound TCP port (resolved even when constructed with 0)."""
        return int(self._httpd.server_address[1])

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "MonitorServer":
        """Start serving on a daemon thread; returns ``self``."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-monitor", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down and join its thread (idempotent)."""
        if self._thread is None:
            return
        self._httpd.shutdown()
        self._thread.join(timeout=5.0)
        self._httpd.server_close()
        self._thread = None

    def __enter__(self) -> "MonitorServer":
        """Start on context entry."""
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        """Stop on context exit."""
        self.stop()
