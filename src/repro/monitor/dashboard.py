"""Stdlib-rendered ``/dashboard`` HTML page for ``repro.monitor serve``.

One self-contained document — inline CSS, inline SVG, zero scripts,
zero external assets — so it renders from ``curl`` output, a file://
open, or an air-gapped scrape archive:

* a stat-tile row (elements seen, queries answered, audits, drift
  alerts — the alert tile pairs an icon with the label so state never
  rides on color alone);
* three sparkline cards from the flight-recorder timeseries:
  ingest throughput (elements/s), realized estimate error, and audit CI
  coverage.  Each card is a single series, so the card title is the
  legend; per-point hover uses native SVG ``<title>`` tooltips;
* the hottest profiled frames (``top``-style, from the ``/profile``
  snapshot) and a recent-windows table — the accessible, copy-pastable
  view of the same data the sparklines draw.

Light and dark palettes follow the repo-wide viz tokens: series color
only on marks, text always in ink tokens, dark mode selected via both
the OS media query and an explicit ``data-theme`` override.
"""

from __future__ import annotations

import html
from typing import Any, Callable, Sequence

#: Sparkline geometry (viewBox units; the SVG scales to its card).
_SPARK_W = 280.0
_SPARK_H = 64.0
_SPARK_PAD = 7.0

#: Most-recent telemetry windows shown in the table view.
_TABLE_ROWS = 12

#: Hottest frames shown from the profile snapshot.
_TOP_FRAMES = 10

_CSS = """
:root {
  color-scheme: light;
  --page:           #f9f9f7;
  --surface-1:      #fcfcfb;
  --text-primary:   #0b0b0b;
  --text-secondary: #52514e;
  --text-muted:     #898781;
  --gridline:       #e1e0d9;
  --baseline:       #c3c2b7;
  --border:         rgba(11,11,11,0.10);
  --series-1:       #2a78d6;
  --status-good:    #0ca30c;
  --status-critical:#d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) {
    color-scheme: dark;
    --page:           #0d0d0d;
    --surface-1:      #1a1a19;
    --text-primary:   #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted:     #898781;
    --gridline:       #2c2c2a;
    --baseline:       #383835;
    --border:         rgba(255,255,255,0.10);
    --series-1:       #3987e5;
  }
}
:root[data-theme="dark"] {
  color-scheme: dark;
  --page:           #0d0d0d;
  --surface-1:      #1a1a19;
  --text-primary:   #ffffff;
  --text-secondary: #c3c2b7;
  --text-muted:     #898781;
  --gridline:       #2c2c2a;
  --baseline:       #383835;
  --border:         rgba(255,255,255,0.10);
  --series-1:       #3987e5;
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px;
  background: var(--page); color: var(--text-primary);
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  font-size: 14px; line-height: 1.45;
}
h1 { font-size: 18px; margin: 0 0 2px; }
.sub { color: var(--text-muted); margin: 0 0 20px; }
.row { display: flex; flex-wrap: wrap; gap: 12px; margin-bottom: 20px; }
.tile, .card {
  background: var(--surface-1);
  border: 1px solid var(--border); border-radius: 8px;
}
.tile { padding: 10px 16px; min-width: 132px; }
.tile .v { font-size: 24px; font-weight: 600; }
.tile .l { color: var(--text-secondary); font-size: 12px; }
.tile .l .ic { margin-right: 4px; }
.tile.alerting .v { color: var(--status-critical); }
.card { padding: 12px 16px; width: 320px; }
.card h2 { font-size: 13px; font-weight: 600; margin: 0; }
.card .now { color: var(--text-secondary); font-size: 12px; margin: 0 0 6px; }
.card svg { display: block; width: 100%; height: auto; }
.card .empty { color: var(--text-muted); padding: 18px 0; }
table { border-collapse: collapse; background: var(--surface-1);
        border: 1px solid var(--border); border-radius: 8px; }
caption { text-align: left; font-weight: 600; font-size: 13px;
          padding: 8px 2px; color: var(--text-primary); }
th, td { padding: 5px 12px; text-align: right;
         font-variant-numeric: tabular-nums; }
th { color: var(--text-secondary); font-weight: 500; font-size: 12px;
     border-bottom: 1px solid var(--gridline); }
td:first-child, th:first-child { text-align: left;
     font-variant-numeric: normal; }
tbody tr + tr td { border-top: 1px solid var(--gridline); }
td.frame { font-family: ui-monospace, SFMono-Regular, Menlo, monospace;
           font-size: 12px; color: var(--text-secondary); }
.section { margin-bottom: 20px; }
footer { color: var(--text-muted); font-size: 12px; margin-top: 8px; }
"""


def _fmt(value: float) -> str:
    """Compact human number: thousands separators, sensible precision."""
    if value != value:  # NaN
        return "-"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    if abs(value) >= 1:
        return f"{value:,.2f}".rstrip("0").rstrip(".")
    if value == 0:
        return "0"
    return f"{value:.4g}"


def _sparkline(points: Sequence[tuple[float, float]], unit: str) -> str:
    """Inline-SVG sparkline: 2px series line on a hairline baseline,
    a filled dot + native ``<title>`` tooltip per point, no axes.

    ``points`` are ``(seconds, value)`` pairs, chronological.
    """
    if len(points) < 2:
        return '<div class="empty">no data yet</div>'
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    inner_w = _SPARK_W - 2 * _SPARK_PAD
    inner_h = _SPARK_H - 2 * _SPARK_PAD

    def sx(x: float) -> float:
        return _SPARK_PAD + (x - x_lo) / x_span * inner_w

    def sy(y: float) -> float:
        return _SPARK_PAD + (1.0 - (y - y_lo) / y_span) * inner_h

    coords = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in points)
    dots = []
    for x, y in points:
        title = html.escape(f"t={x:.1f}s: {_fmt(y)}{unit}")
        dots.append(
            f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="7" fill="transparent">'
            f"<title>{title}</title></circle>"
        )
    last_x, last_y = points[-1]
    baseline_y = sy(y_lo)
    return (
        f'<svg viewBox="0 0 {_SPARK_W:.0f} {_SPARK_H:.0f}" role="img" '
        f'aria-label="{html.escape(_fmt(last_y) + unit)} latest">'
        f'<line x1="{_SPARK_PAD:.1f}" y1="{baseline_y:.1f}" '
        f'x2="{_SPARK_W - _SPARK_PAD:.1f}" y2="{baseline_y:.1f}" '
        f'stroke="var(--baseline)" stroke-width="1"/>'
        f'<polyline points="{coords}" fill="none" stroke="var(--series-1)" '
        f'stroke-width="2" stroke-linejoin="round" stroke-linecap="round"/>'
        f'<circle cx="{sx(last_x):.1f}" cy="{sy(last_y):.1f}" r="3" '
        f'fill="var(--series-1)"/>'
        f"{''.join(dots)}"
        "</svg>"
    )


def _frame_value(
    frame: dict[str, Any],
    counts_keys: Sequence[str],
    gauge_keys: Sequence[str],
    as_rate: bool,
) -> float | None:
    """First matching series value in a telemetry frame, or ``None``.

    Counter keys win over gauge keys; ``as_rate`` divides the counter
    delta by the window length.  Keys are alternatives (live-pulse vs
    full-metrics names for the same quantity), not additive — summing
    them would double-count when both channels are on.
    """
    counts = frame.get("counts", {})
    for key in counts_keys:
        if key in counts:
            if not as_rate:
                return float(counts[key])
            dt = float(frame.get("t1", 0.0)) - float(frame.get("t0", 0.0))
            return float(counts[key]) / dt if dt > 0 else None
    gauges = frame.get("gauges", {})
    for key in gauge_keys:
        if key in gauges:
            return float(gauges[key])
    return None


#: The three dashboard series: (title, unit, counter keys, gauge keys, rate?).
_SERIES: list[tuple[str, str, tuple[str, ...], tuple[str, ...], bool]] = [
    (
        "Ingest throughput",
        " el/s",
        ("engine.elements.seen", "ingest.elements"),
        (),
        True,
    ),
    (
        "Realized estimate error",
        "",
        (),
        ("monitor.audit.realized_error", "audit.realized_error"),
        False,
    ),
    (
        "Audit CI coverage",
        "",
        (),
        ("audit.coverage", "monitor.audit.ci_coverage", "monitor.shadow.coverage"),
        False,
    ),
]


def _series_points(
    frames: Sequence[dict[str, Any]],
    counts_keys: Sequence[str],
    gauge_keys: Sequence[str],
    as_rate: bool,
) -> list[tuple[float, float]]:
    points = []
    for frame in frames:
        value = _frame_value(frame, counts_keys, gauge_keys, as_rate)
        if value is not None:
            points.append((float(frame.get("t1", 0.0)), value))
    return points


def _aggregate_profile(profile: dict[str, Any]) -> dict[str, Any] | None:
    try:
        from ..profile import aggregate_samples
    except ImportError:  # standalone layout: shadows stdlib `profile`
        from profile import aggregate_samples  # type: ignore
    try:
        return aggregate_samples(profile)
    except ValueError:
        return None  # malformed snapshot: render the rest of the page


def _origin_rows(federation: Any) -> str:
    """Per-origin fleet table from a ``FederatedSource`` topology.

    One row per configured origin — reachable or not (a dead site is
    exactly what an operator needs to see) — with last-report age,
    rounds, report bytes, and the telemetry piggyback bytes.
    """
    topology = federation.topology()
    parts = [
        "<table><caption>Federated origins</caption>",
        "<thead><tr><th>origin</th><th>source</th><th>status</th>"
        "<th>age s</th><th>rounds</th><th>reports</th><th>bytes</th>"
        "<th>telemetry bytes</th></tr></thead><tbody>",
    ]
    for origin, row in sorted(topology.get("origins", {}).items()):
        if row.get("ok"):
            status = "&#9679; up"
        else:
            error = html.escape(str(row.get("error") or "unreachable"))
            status = f'&#9888; <span title="{error}">down</span>'
        age = row.get("age_seconds")
        parts.append(
            f'<tr><td class="frame">{html.escape(origin)}</td>'
            f'<td class="frame">{html.escape(str(row.get("target", "")))}</td>'
            f"<td>{status}</td>"
            f"<td>{'-' if age is None else _fmt(float(age))}</td>"
            f"<td>{_fmt(float(row.get('rounds', 0)))}</td>"
            f"<td>{_fmt(float(row.get('reports', 0)))}</td>"
            f"<td>{_fmt(float(row.get('bytes', 0)))}</td>"
            f"<td>{_fmt(float(row.get('telemetry_bytes', 0)))}</td></tr>"
        )
    parts.append("</tbody></table>")
    return "".join(parts)


def render_dashboard(source: Any, federation: Any = None) -> str:
    """Render the full dashboard HTML for a ``MonitorSource``.

    ``federation`` (a :class:`repro.federate.FederatedSource`, optional)
    adds a per-origin fleet table above the telemetry sections.
    """
    metrics = source.metrics_snapshot()
    audits = source.audit_snapshot()
    profile = source.profile_snapshot()
    timeseries = source.timeseries_snapshot()

    counters = metrics.get("counters", {})
    alert_count = len(audits.get("alerts", []))
    frames = timeseries.get("frames", [])

    parts: list[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        '<meta name="viewport" content="width=device-width, initial-scale=1">',
        "<title>repro monitor</title>",
        f"<style>{_CSS}</style></head><body>",
        "<h1>repro monitor</h1>",
        '<p class="sub">skimmed-sketch join pipeline &middot; live telemetry, '
        "estimate audits, continuous profile</p>",
    ]

    # Stat tiles.  The alert tile pairs icon + label (never color alone).
    tiles = [
        ("elements seen", _fmt(counters.get("engine.elements.seen", 0.0)), "", ""),
        ("queries answered", _fmt(counters.get("engine.queries", 0.0)), "", ""),
        ("audits recorded", _fmt(float(audits.get("recorded", 0))), "", ""),
        (
            "drift alerts",
            _fmt(float(alert_count)),
            "alerting" if alert_count else "",
            "&#9888; " if alert_count else "&#9679; ",
        ),
    ]
    parts.append('<div class="row">')
    for label, value, extra_class, icon in tiles:
        parts.append(
            f'<div class="tile {extra_class}"><div class="v">{value}</div>'
            f'<div class="l"><span class="ic">{icon}</span>{label}</div></div>'
        )
    parts.append("</div>")

    # Sparkline cards (one series each: the title is the legend).
    parts.append('<div class="row">')
    for title, unit, counts_keys, gauge_keys, as_rate in _SERIES:
        points = _series_points(frames, counts_keys, gauge_keys, as_rate)
        now = f"{_fmt(points[-1][1])}{unit}" if points else "&mdash;"
        parts.append(
            f'<div class="card"><h2>{html.escape(title)}</h2>'
            f'<p class="now">{now}</p>{_sparkline(points, unit)}</div>'
        )
    parts.append("</div>")

    # Fleet view (only when serving with --federate).
    if federation is not None:
        parts.append('<div class="section">')
        parts.append(_origin_rows(federation))
        parts.append("</div>")

    # Hottest frames (profile top).
    aggregate = _aggregate_profile(profile)
    parts.append('<div class="section">')
    if aggregate and aggregate["frames"]:
        parts.append("<table><caption>Hottest frames "
                     f"({aggregate['samples']} samples, "
                     f"{_fmt(aggregate['seconds'])}s sampled)</caption>")
        parts.append(
            "<thead><tr><th>frame</th><th>self s</th><th>self %</th>"
            "<th>total s</th></tr></thead><tbody>"
        )
        total = aggregate["seconds"] or 1.0
        for row in aggregate["frames"][:_TOP_FRAMES]:
            parts.append(
                f'<tr><td class="frame">{html.escape(row["frame"])}</td>'
                f"<td>{row['self']:.3f}</td>"
                f"<td>{100.0 * row['self'] / total:.1f}</td>"
                f"<td>{row['total']:.3f}</td></tr>"
            )
        parts.append("</tbody></table>")
    else:
        parts.append(
            '<p class="sub">No profile samples &mdash; run with '
            "<code>--profile-out</code> or start PROFILER.</p>"
        )
    parts.append("</div>")

    # Table view of the sparkline data (the accessibility channel).
    parts.append('<div class="section">')
    if frames:
        recent = frames[-_TABLE_ROWS:]
        parts.append(
            "<table><caption>Recent telemetry windows</caption>"
            "<thead><tr><th>window</th><th>len s</th><th>res</th>"
            "<th>el/s</th><th>error</th><th>coverage</th></tr></thead><tbody>"
        )
        for frame in recent:
            t0, t1 = float(frame.get("t0", 0.0)), float(frame.get("t1", 0.0))
            cells = []
            for _, _, counts_keys, gauge_keys, as_rate in _SERIES:
                value = _frame_value(frame, counts_keys, gauge_keys, as_rate)
                cells.append("-" if value is None else _fmt(value))
            parts.append(
                f"<tr><td>{t0:.1f}&ndash;{t1:.1f}s</td><td>{t1 - t0:.1f}</td>"
                f"<td>{frame.get('res', 0)}</td>"
                + "".join(f"<td>{cell}</td>" for cell in cells)
                + "</tr>"
            )
        parts.append("</tbody></table>")
    else:
        parts.append(
            '<p class="sub">No telemetry frames &mdash; run with '
            "<code>--timeseries-out</code> or start RECORDER.</p>"
        )
    parts.append("</div>")

    parts.append(
        f"<footer>{len(frames)} telemetry frames "
        f"({timeseries.get('pushed', 0)} pushed, {timeseries.get('aged', 0)} "
        f"aged) &middot; {len(profile.get('samples', []))} stack samples "
        f"&middot; endpoints: /metrics /health /audits /snapshot /profile "
        f"/timeseries</footer>"
    )
    parts.append("</body></html>")
    return "".join(parts)
