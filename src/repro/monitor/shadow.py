"""Shadow-exact drift detection for audited join estimates.

A skimmed sketch's error bound is *probabilistic*; nothing in the sketch
itself can tell you whether the realized error has started to exceed it
(bad hash seeds for the live data, a schema sized for a different skew,
a buggy merge).  The :class:`ShadowAuditor` closes that gap the way
production sketch deployments do: it maintains **exact** joint
frequencies on a deterministic hash-sampled sub-domain, so for every
audited query it can compute an unbiased estimate of the true join size,
the realized error of the sketch answer, and whether that error fell
inside the theory confidence interval recorded on the
:class:`~repro.monitor.audit.QueryAudit`.

Coverage is tracked over a rolling window of audited queries; when the
fraction of in-CI answers drops below the configured target (the CI was
built at ``1 - delta`` confidence, so the target is normally
``1 - delta`` minus sampling slack), a structured :class:`DriftAlert` is
raised — appended to the audit log, surfaced as gauges by the engine
wiring, and emitted as a ``repro.monitor`` warning log record.

Sampling is by value hash (splitmix64), so the same sub-domain is
tracked for every stream and join sizes restrict exactly: a value ``v``
is shadowed iff ``hash(v ^ seed) / 2**64 < sample_rate``.  With
``sample_rate = 1.0`` the auditor is an exact mirror (the configuration
used in tests and the smoke experiment, where domains are small).

Stdlib-only, like the rest of ``repro.monitor``.
"""

from __future__ import annotations

import logging
from collections import deque
from dataclasses import dataclass
from typing import Any, Iterable

LOGGER = logging.getLogger("repro.monitor")

_MASK64 = (1 << 64) - 1

#: Default rolling window length for coverage tracking.
DEFAULT_WINDOW = 64

#: Minimum audited queries before a coverage verdict is meaningful.
DEFAULT_MIN_WINDOW = 20


def _mix64(value: int) -> int:
    """splitmix64 finalizer — a cheap, well-distributed 64-bit mix."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


@dataclass(frozen=True)
class DriftAlert:
    """Structured record of a coverage violation over a rolling window.

    ``coverage`` is the fraction of the window's audited queries whose
    realized error fell inside their theory CI; the alert fires when it
    drops below ``target``.  ``streams`` and the last query's numbers
    identify where to look first.
    """

    window: int
    covered: int
    coverage: float
    target: float
    streams: tuple[str, ...]
    estimate: float
    shadow_exact: float
    realized_error: float
    ci_halfwidth: float

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready dict (the JSONL / ``/audits`` wire format)."""
        return {
            "record_type": "drift_alert",
            "window": self.window,
            "covered": self.covered,
            "coverage": self.coverage,
            "target": self.target,
            "streams": list(self.streams),
            "estimate": self.estimate,
            "shadow_exact": self.shadow_exact,
            "realized_error": self.realized_error,
            "ci_halfwidth": self.ci_halfwidth,
        }

    def describe(self) -> str:
        """One-line human summary for logs."""
        return (
            f"drift: coverage {self.coverage:.2f} < target {self.target:.2f} "
            f"over last {self.window} audited queries "
            f"(last: streams={'/'.join(self.streams) or '?'} "
            f"estimate={self.estimate:.1f} exact={self.shadow_exact:.1f} "
            f"|err|={self.realized_error:.1f} ci={self.ci_halfwidth:.1f})"
        )


class ShadowAuditor:
    """Exact joint frequencies on a hash-sampled sub-domain.

    Attach one to a :class:`~repro.streams.engine.StreamEngine` via
    ``attach_shadow``; the engine feeds it every ingested element (only
    while audits are enabled) and consults it after every audited join
    query.  Memory is ``O(sample_rate * distinct values)`` per stream.
    """

    def __init__(
        self,
        sample_rate: float = 1.0,
        seed: int = 0,
        window: int = DEFAULT_WINDOW,
        coverage_target: float = 0.9,
        min_window: int = DEFAULT_MIN_WINDOW,
    ) -> None:
        if not 0.0 < sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in (0, 1], got {sample_rate}")
        if not 0.0 < coverage_target <= 1.0:
            raise ValueError(
                f"coverage_target must be in (0, 1], got {coverage_target}"
            )
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if min_window < 1:
            raise ValueError(f"min_window must be >= 1, got {min_window}")
        self.sample_rate = sample_rate
        self.seed = seed
        self.coverage_target = coverage_target
        self.min_window = min_window
        self._threshold = int(sample_rate * float(1 << 64))
        self._frequencies: dict[str, dict[int, float]] = {}
        self._window: deque[bool] = deque(maxlen=window)
        self._queries = 0
        self._alerts = 0

    # -- ingest ------------------------------------------------------------

    def sampled(self, value: int) -> bool:
        """Whether ``value`` belongs to the shadowed sub-domain."""
        if self.sample_rate >= 1.0:
            return True
        return _mix64(int(value) ^ (self.seed * 0x9E3779B97F4A7C15 & _MASK64)) < (
            self._threshold
        )

    def observe(self, stream: str, value: int, weight: float = 1.0) -> None:
        """Fold one stream element into the shadow frequencies."""
        value = int(value)
        if not self.sampled(value):
            return
        freqs = self._frequencies.setdefault(stream, {})
        freqs[value] = freqs.get(value, 0.0) + float(weight)

    def observe_bulk(
        self,
        stream: str,
        values: Iterable[int],
        weights: Iterable[float] | None = None,
    ) -> None:
        """Fold a batch of elements (Python-loop; audits-enabled only)."""
        freqs = self._frequencies.setdefault(stream, {})
        if weights is None:
            for raw in values:
                value = int(raw)
                if self.sampled(value):
                    freqs[value] = freqs.get(value, 0.0) + 1.0
        else:
            for raw, weight in zip(values, weights):
                value = int(raw)
                if self.sampled(value):
                    freqs[value] = freqs.get(value, 0.0) + float(weight)

    # -- exact answers -----------------------------------------------------

    def tracked_streams(self) -> list[str]:
        """Streams with at least one shadowed element, sorted."""
        return sorted(self._frequencies)

    def tracked_values(self, stream: str) -> int:
        """Number of distinct shadowed values for ``stream``."""
        return len(self._frequencies.get(stream, {}))

    def exact_sub_join(self, left: str, right: str) -> float:
        """Exact join size restricted to the shadowed sub-domain."""
        f = self._frequencies.get(left, {})
        g = self._frequencies.get(right, {})
        if len(g) < len(f):
            f, g = g, f
        return sum(freq * g.get(value, 0.0) for value, freq in f.items())

    def estimate_exact_join(self, left: str, right: str) -> float:
        """Unbiased estimate of the full-domain join size.

        Each value lands in the shadow independently with probability
        ``sample_rate``, so ``(sub-domain join) / sample_rate`` is
        unbiased over the sampling hash.  Exact when ``sample_rate`` is
        ``1.0``.
        """
        return self.exact_sub_join(left, right) / self.sample_rate

    # -- drift tracking ----------------------------------------------------

    @property
    def queries(self) -> int:
        """Total audited queries observed."""
        return self._queries

    @property
    def alert_count(self) -> int:
        """Total drift alerts raised."""
        return self._alerts

    def coverage(self) -> float:
        """In-CI fraction over the current window (1.0 when empty)."""
        if not self._window:
            return 1.0
        return sum(self._window) / len(self._window)

    def observe_query(
        self,
        left: str,
        right: str,
        estimate: float,
        ci_halfwidth: float,
    ) -> tuple[float, float, bool, DriftAlert | None]:
        """Score one audited query against the shadow-exact answer.

        Returns ``(shadow_exact, realized_error, covered, alert)``;
        ``alert`` is ``None`` unless this query tipped the rolling
        window's coverage below ``coverage_target`` (the window resets
        after an alert so one bad stretch raises one alert, not a
        storm).
        """
        exact = self.estimate_exact_join(left, right)
        realized = abs(float(estimate) - exact)
        covered = realized <= ci_halfwidth
        self._queries += 1
        self._window.append(covered)
        alert: DriftAlert | None = None
        if len(self._window) >= self.min_window:
            in_ci = sum(self._window)
            coverage = in_ci / len(self._window)
            if coverage < self.coverage_target:
                alert = DriftAlert(
                    window=len(self._window),
                    covered=in_ci,
                    coverage=coverage,
                    target=self.coverage_target,
                    streams=(left, right),
                    estimate=float(estimate),
                    shadow_exact=exact,
                    realized_error=realized,
                    ci_halfwidth=float(ci_halfwidth),
                )
                self._alerts += 1
                self._window.clear()
                LOGGER.warning("%s", alert.describe())
        return exact, realized, covered, alert

    def reset(self) -> None:
        """Drop all shadow state (frequencies, window, counters)."""
        self._frequencies.clear()
        self._window.clear()
        self._queries = 0
        self._alerts = 0

    def __repr__(self) -> str:
        return (
            f"ShadowAuditor(sample_rate={self.sample_rate}, "
            f"streams={len(self._frequencies)}, queries={self._queries}, "
            f"alerts={self._alerts})"
        )
