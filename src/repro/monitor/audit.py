"""Per-query estimate-quality audits: records, theory CIs, the audit log.

The paper's headline result is a *guarantee* — ESTSKIMJOINSIZE answers
within relative error ``~ 8 * sqrt(SJ(f') * SJ(g')) / (J * sqrt(s1))``
with high probability (Theorem 4.2 / Lemma 4.1), where ``SJ(f')`` /
``SJ(g')`` are the self-join sizes of the *skimmed residuals*.  At
runtime the estimator returns a bare number; this module makes the
guarantee observable per query:

* :class:`QueryAudit` — one join estimate's full quality record: the
  four sub-join terms, the residual self-join sizes, the skim thresholds,
  the residual-infinity-norm check against SKIMDENSE's ``< 2T`` contract,
  and an a-posteriori confidence interval at a configurable ``delta``;
* :func:`confidence_halfwidth` — the CI math (Chebyshev per table plus
  median boosting across the ``s2`` tables, see the function docstring);
* :class:`AuditLog` — the process-wide sink (``repro.monitor.AUDIT``):
  a bounded in-memory ring plus an optional streaming JSONL sink, **off
  by default** behind a single ``enabled`` attribute exactly like
  ``repro.obs.METRICS`` and ``repro.trace.TRACER`` (the R8 linter rule
  keeps every hook lexically guarded).

Like its sibling observability packages, this module imports **only the
standard library** — it must ride along in the thinnest serving agent
(the test suite enforces the no-numpy constraint).
"""

from __future__ import annotations

import json
import math
from collections import deque
from dataclasses import asdict, dataclass, field
from typing import Any, Iterator, TextIO

#: Default bound on the in-memory audit ring.
DEFAULT_MAX_AUDITS = 4096

#: Default CI miss probability (the ``delta`` in a ``1 - delta`` CI).
DEFAULT_DELTA = 0.05

#: SKIMDENSE's residual contract: every skimmed frequency is below
#: ``RESIDUAL_BOUND_FACTOR * threshold`` with high probability (Thm 4.1).
RESIDUAL_BOUND_FACTOR = 2.0


def per_table_tail_probability(delta: float, depth: int) -> float:
    """Largest per-table failure probability ``p`` so the median holds.

    The estimator medians ``depth`` (the paper's ``s2``) independent
    per-table estimates.  If each table deviates beyond the CI halfwidth
    with probability at most ``p``, the *median* deviates only when at
    least half the tables do, which fails with probability at most

    * ``exp(-2 * depth * (1/2 - p)**2)`` (Hoeffding on the count of bad
      tables) — the usual boosting bound, strong for deep sketches; and
    * ``2 * p`` (Markov on the expected count ``depth * p``) — weak but
      depth-free, so shallow sketches still get a finite interval.

    We return the largest ``p`` (tightest CI) for which either bound is
    at most ``delta``: ``max(delta / 2, 1/2 - sqrt(ln(1/delta) /
    (2 * depth)))``.  Always in ``(0, 1/2]``.
    """
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    if depth < 1:
        raise ValueError(f"depth must be >= 1, got {depth}")
    hoeffding = 0.5 - math.sqrt(math.log(1.0 / delta) / (2.0 * depth))
    return min(0.5, max(delta / 2.0, hoeffding))


def confidence_halfwidth(
    sj_f_dense: float,
    sj_g_dense: float,
    sj_f_residual: float,
    sj_g_residual: float,
    width: int,
    depth: int,
    delta: float = DEFAULT_DELTA,
) -> float:
    """A-posteriori CI halfwidth for one skimmed-sketch join estimate.

    Of the four sub-join terms only three are estimated (the dense-dense
    term is exact); per Lemma 4.1 each per-table estimate of
    ``<left, right>`` has variance at most ``2 * SJ(left) * SJ(right) /
    s1``.  Chebyshev bounds the per-table deviation by
    ``sqrt(2 * SJ(left) * SJ(right) / (s1 * p))`` with probability
    ``1 - p``, and :func:`per_table_tail_probability` picks ``p`` so the
    median over the ``s2`` tables holds with probability ``1 - delta``.
    The halfwidth is the sum of the three terms' bounds — at the default
    ``delta = 0.05`` the sparse-sparse term alone contributes
    ``~ 9 * sqrt(SJ(f') * SJ(g')) / sqrt(s1)``, the shape of the
    Theorem 4.2 guarantee.

    All self-join sizes must be non-negative (clamp estimates first).
    """
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    for name, value in (
        ("sj_f_dense", sj_f_dense),
        ("sj_g_dense", sj_g_dense),
        ("sj_f_residual", sj_f_residual),
        ("sj_g_residual", sj_g_residual),
    ):
        if value < 0:
            raise ValueError(f"{name} must be non-negative, got {value}")
    p = per_table_tail_probability(delta, depth)
    scale = math.sqrt(2.0 / (float(width) * p))
    return scale * (
        math.sqrt(sj_f_dense * sj_g_residual)
        + math.sqrt(sj_g_dense * sj_f_residual)
        + math.sqrt(sj_f_residual * sj_g_residual)
    )


@dataclass
class QueryAudit:
    """One join estimate's quality record (the ``/audits`` wire schema).

    The estimator fills the theory-side fields at emission time; the
    stream engine / distributed coordinator *enrich* the same record
    (stream names, per-stream sketch health, shadow-exact realized
    error) before the next audit is recorded, so a streamed JSONL line
    is always complete.  ``None`` marks enrichment that never happened
    (e.g. direct ``est_join_size`` calls outside an engine).
    """

    estimate: float
    dense_dense: float
    dense_sparse: float
    sparse_dense: float
    sparse_sparse: float
    sj_f_dense: float
    sj_g_dense: float
    sj_f_residual: float
    sj_g_residual: float
    width: int
    depth: int
    threshold_f: float
    threshold_g: float
    residual_linf_f: float
    residual_linf_g: float
    residual_bound_ok: bool
    delta: float
    ci_halfwidth: float
    ci_low: float
    ci_high: float
    index: int = 0
    origin: str = "estimator"
    dyadic: bool | None = None
    n_f: float | None = None
    n_g: float | None = None
    streams: tuple[str, ...] | None = None
    sites: tuple[str, ...] | None = None
    health: dict[str, dict[str, float]] | None = None
    shadow_exact: float | None = None
    realized_error: float | None = None
    realized_relative_error: float | None = None
    covered: bool | None = None
    extra: dict[str, Any] = field(default_factory=dict)

    def relative_ci_halfwidth(self) -> float:
        """``ci_halfwidth / |estimate|`` (``inf`` for a zero estimate)."""
        if self.estimate == 0:
            return float("inf")
        return self.ci_halfwidth / abs(self.estimate)

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready dict (non-finite floats encoded as strings)."""
        out = asdict(self)
        out["record_type"] = "audit"
        for key in ("streams", "sites"):
            if out[key] is not None:
                out[key] = list(out[key])
        return _jsonable(out)

    def to_json(self) -> str:
        """The audit as one compact JSON line (the JSONL wire format)."""
        return json.dumps(self.as_dict(), sort_keys=True)


def _jsonable(value: Any) -> Any:
    """Recursively replace non-finite floats (JSON has no inf/nan)."""
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, float) and not math.isfinite(value):
        return repr(value)  # "inf" / "-inf" / "nan"
    return value


def _definite(value: Any) -> Any:
    """Undo :func:`_jsonable`'s non-finite string encoding."""
    if isinstance(value, str) and value in ("inf", "-inf", "nan"):
        return float(value)
    if isinstance(value, dict):
        return {k: _definite(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_definite(v) for v in value]
    return value


#: QueryAudit fields that must be present on every wire record.
_REQUIRED_AUDIT_FIELDS = (
    "estimate",
    "dense_dense",
    "dense_sparse",
    "sparse_dense",
    "sparse_sparse",
    "sj_f_residual",
    "sj_g_residual",
    "width",
    "depth",
    "threshold_f",
    "threshold_g",
    "residual_bound_ok",
    "delta",
    "ci_halfwidth",
    "ci_low",
    "ci_high",
)


def audit_from_dict(data: dict[str, Any]) -> QueryAudit:
    """Rebuild a :class:`QueryAudit` from its wire dict (inverse of
    :meth:`QueryAudit.as_dict`); raises ``ValueError`` on schema gaps."""
    if not isinstance(data, dict):
        raise ValueError(f"audit record must be a dict, got {type(data).__name__}")
    missing = [f for f in _REQUIRED_AUDIT_FIELDS if f not in data]
    if missing:
        raise ValueError(f"audit record missing fields {missing}")
    payload = {k: _definite(v) for k, v in data.items() if k != "record_type"}
    for key in ("streams", "sites"):
        if payload.get(key) is not None:
            payload[key] = tuple(payload[key])
    known = set(QueryAudit.__dataclass_fields__)
    unknown = {k: payload.pop(k) for k in list(payload) if k not in known}
    audit = QueryAudit(**payload)
    if unknown:
        audit.extra.update(unknown)
    return audit


class AuditLog:
    """Bounded ring of :class:`QueryAudit` records behind one switch.

    The process-wide instance is ``repro.monitor.AUDIT``; instrumentation
    hooks in the estimator / engine / coordinator guard every recording
    call with a plain ``if _AUDIT.enabled:`` branch (linter rule R8), so
    disabled auditing costs one attribute read per *query* — audits
    never touch the per-element path.

    ``max_audits`` bounds memory: the ring keeps the most recent records
    and counts evictions in ``evicted``.  An optional JSONL sink
    (:meth:`open_jsonl`) streams every audit; a record is written when
    the *next* one is recorded (or at :meth:`close_jsonl`), so post-hoc
    enrichment by the engine lands in the file too.
    """

    def __init__(
        self,
        enabled: bool = False,
        max_audits: int = DEFAULT_MAX_AUDITS,
        delta: float = DEFAULT_DELTA,
    ) -> None:
        if max_audits < 1:
            raise ValueError(f"max_audits must be >= 1, got {max_audits}")
        if not 0.0 < delta < 1.0:
            raise ValueError(f"delta must be in (0, 1), got {delta}")
        self.enabled = enabled
        self.max_audits = max_audits
        self.delta = delta
        self.evicted = 0
        self.alerts: list[Any] = []
        self._ring: deque[QueryAudit] = deque(maxlen=max_audits)
        self._next_index = 1
        self._sink: TextIO | None = None
        self._sink_pending: QueryAudit | None = None

    # -- switch ------------------------------------------------------------

    def enable(self) -> None:
        """Turn audit recording on (idempotent)."""
        self.enabled = True

    def disable(self) -> None:
        """Turn audit recording off; recorded audits are kept."""
        self.enabled = False

    def reset(self) -> None:
        """Drop every audit and alert, restart indices (flag kept);
        closes any open JSONL sink without flushing its pending record."""
        self._ring.clear()
        self.alerts.clear()
        self.evicted = 0
        self._next_index = 1
        self._sink_pending = None
        if self._sink is not None:
            self._sink.close()
            self._sink = None

    # -- recording ---------------------------------------------------------

    def record(self, audit: QueryAudit) -> QueryAudit:
        """Append one audit (no-op while disabled); returns it with its
        assigned index.  Flushes the previously pending record to the
        JSONL sink — by then its enrichment is complete."""
        if not self.enabled:
            return audit
        audit.index = self._next_index
        self._next_index += 1
        if len(self._ring) == self._ring.maxlen:
            self.evicted += 1
        if self._sink is not None:
            self._flush_pending()
            self._sink_pending = audit
        self._ring.append(audit)
        return audit

    def annotate_last(self, **fields: Any) -> None:
        """Attach fields to the most recent audit (no-op while disabled
        or when nothing was recorded).  Unknown names land in ``extra``."""
        if not self.enabled:
            return
        audit = self.last()
        if audit is None:
            return
        known = set(QueryAudit.__dataclass_fields__)
        for name, value in fields.items():
            if name in known:
                setattr(audit, name, value)
            else:
                audit.extra[name] = value

    def alert(self, alert: Any) -> None:
        """Append one structured drift alert (no-op while disabled)."""
        if not self.enabled:
            return
        self.alerts.append(alert)

    # -- reading -----------------------------------------------------------

    def last(self) -> QueryAudit | None:
        """The most recently recorded audit (``None`` when empty)."""
        return self._ring[-1] if self._ring else None

    def audits(self) -> list[QueryAudit]:
        """Retained audits, oldest first."""
        return list(self._ring)

    def recent(self, count: int) -> list[QueryAudit]:
        """The last ``count`` audits, oldest first."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        return list(self._ring)[-count:] if count else []

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterator[QueryAudit]:
        return iter(self._ring)

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready dump of the ring and alerts (readable while
        disabled, like a metrics snapshot).

        ``list(deque)`` runs atomically under the GIL, so materialising
        first lets a monitor thread snapshot while queries append —
        iterating the live deque directly would raise ``RuntimeError``.
        """
        audits = list(self._ring)
        alerts = list(self.alerts)
        return {
            "version": 1,
            "kind": "repro.monitor",
            "recorded": self._next_index - 1,
            "evicted": self.evicted,
            "audits": [a.as_dict() for a in audits],
            "alerts": [a.as_dict() for a in alerts],
        }

    # -- JSONL sink --------------------------------------------------------

    def open_jsonl(self, path: str) -> None:
        """Start streaming every audit to ``path`` (one JSON object per
        line).  Replaces any previously open sink."""
        self.close_jsonl()
        self._sink = open(path, "w", encoding="utf-8")

    def close_jsonl(self) -> None:
        """Flush the pending record and close the streaming sink."""
        if self._sink is None:
            return
        self._flush_pending()
        self._sink.close()
        self._sink = None

    def _flush_pending(self) -> None:
        if self._sink_pending is not None and self._sink is not None:
            self._sink.write(self._sink_pending.to_json())
            self._sink.write("\n")
            self._sink.flush()  # the sink exists to be tailed live
            self._sink_pending = None

    def write_jsonl(self, path: str) -> int:
        """Dump the retained ring (and alerts) to ``path`` as JSONL;
        returns the number of lines written.  This is what ``python -m
        repro.eval --audit-out`` calls at the end of a run."""
        lines = 0
        with open(path, "w", encoding="utf-8") as fh:
            for audit in self._ring:
                fh.write(audit.to_json())
                fh.write("\n")
                lines += 1
            for alert in self.alerts:
                fh.write(json.dumps(alert.as_dict(), sort_keys=True))
                fh.write("\n")
                lines += 1
        return lines

    def __repr__(self) -> str:
        return (
            f"AuditLog(enabled={self.enabled}, audits={len(self._ring)}, "
            f"alerts={len(self.alerts)}, evicted={self.evicted})"
        )


def read_audit_jsonl(path: str) -> tuple[list[QueryAudit], list[dict[str, Any]]]:
    """Load an audit JSONL file; returns ``(audits, alert_dicts)``.

    Lines whose ``record_type`` is ``"drift_alert"`` are returned as raw
    dicts (alerts are display records, not rebuilt objects).
    """
    audits: list[QueryAudit] = []
    alerts: list[dict[str, Any]] = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: invalid JSON: {exc}") from None
            if isinstance(data, dict) and data.get("record_type") == "drift_alert":
                alerts.append(data)
            else:
                audits.append(audit_from_dict(data))
    return audits, alerts
