"""Estimate-quality monitoring for skimmed-sketch join estimates.

The paper proves ESTSKIMJOINSIZE is accurate w.h.p.; this package makes
that guarantee *observable* at runtime:

* :mod:`repro.monitor.audit` — per-query :class:`QueryAudit` records
  (sub-join terms, residual self-join sizes, skim thresholds, the
  ``‖residual‖∞ < 2T`` contract check, and an a-posteriori confidence
  interval), collected in the process-wide :data:`AUDIT` ring;
* :mod:`repro.monitor.shadow` — :class:`ShadowAuditor` keeps exact joint
  frequencies on a hash-sampled sub-domain and raises
  :class:`DriftAlert` when realized error stops fitting the CIs;
* :mod:`repro.monitor.service` — a stdlib HTTP server exposing
  ``/metrics`` (Prometheus), ``/health``, ``/audits`` and ``/snapshot``
  (imported lazily; ``python -m repro.monitor serve``).

Like ``repro.obs`` and ``repro.trace``, auditing is **off by default**:
:data:`AUDIT` starts disabled and every instrumentation hook in the
estimator / engine / coordinator sits behind one ``if _AUDIT.enabled:``
branch (enforced repo-wide by linter rule R8).  The package imports only
the standard library.
"""

from .audit import (
    AuditLog,
    DEFAULT_DELTA,
    DEFAULT_MAX_AUDITS,
    QueryAudit,
    RESIDUAL_BOUND_FACTOR,
    audit_from_dict,
    confidence_halfwidth,
    per_table_tail_probability,
    read_audit_jsonl,
)
from .shadow import DriftAlert, ShadowAuditor

#: Process-wide audit log.  Off by default; ``AUDIT.enable()`` (or
#: ``python -m repro.eval ... --audit-out audits.jsonl``) turns it on.
AUDIT = AuditLog(enabled=False)

__all__ = [
    "AUDIT",
    "AuditLog",
    "DEFAULT_DELTA",
    "DEFAULT_MAX_AUDITS",
    "DriftAlert",
    "QueryAudit",
    "RESIDUAL_BOUND_FACTOR",
    "ShadowAuditor",
    "audit_from_dict",
    "confidence_halfwidth",
    "per_table_tail_probability",
    "read_audit_jsonl",
]
