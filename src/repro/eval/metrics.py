"""Answer-quality metrics (paper Section 5.1, "Answer-Quality Metrics").

The paper scores estimates with a *symmetric* ratio error instead of plain
relative error, because relative error is biased in favour of
underestimates (an estimator that always answers 0 never exceeds error 1,
while overestimates are penalised without bound).  The symmetric error

    error(est, actual) = |est - actual| / min(est, actual)

penalises under- and over-estimates about equally.  When memory is very
low, sketch estimates can come out tiny or negative; the paper then "simply
consider[s] the error to be a large constant, say 10", which
:func:`join_error` reproduces as the ``sanity_bound``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from ..errors import ParameterError

#: The paper's error cap for non-positive / degenerate estimates.
DEFAULT_SANITY_BOUND = 10.0


def join_error(
    estimate: float,
    actual: float,
    sanity_bound: float = DEFAULT_SANITY_BOUND,
) -> float:
    """Symmetric ratio error of a join-size estimate, capped at ``sanity_bound``.

    ``actual`` must be positive (an experiment that joins nothing is not
    meaningful to score).  Non-positive estimates — and any error that
    would exceed the cap — return ``sanity_bound``.
    """
    if actual <= 0:
        raise ParameterError(f"actual join size must be positive, got {actual}")
    if estimate <= 0:
        return sanity_bound
    error = abs(estimate - actual) / min(estimate, actual)
    return float(min(error, sanity_bound))


def relative_error(estimate: float, actual: float) -> float:
    """Classic relative error ``|est - actual| / actual`` (for reference)."""
    if actual <= 0:
        raise ParameterError(f"actual join size must be positive, got {actual}")
    return abs(estimate - actual) / actual


@dataclass(frozen=True)
class ErrorSummary:
    """Aggregate statistics of a batch of error observations."""

    count: int
    mean: float
    median: float
    minimum: float
    maximum: float
    std: float

    @classmethod
    def of(cls, errors: Sequence[float]) -> "ErrorSummary":
        """Summarise a non-empty sequence of error values."""
        arr = np.asarray(list(errors), dtype=np.float64)
        if arr.size == 0:
            raise ParameterError("cannot summarise an empty error sequence")
        return cls(
            count=int(arr.size),
            mean=float(arr.mean()),
            median=float(np.median(arr)),
            minimum=float(arr.min()),
            maximum=float(arr.max()),
            std=float(arr.std()),
        )

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.4g} median={self.median:.4g} "
            f"min={self.minimum:.4g} max={self.maximum:.4g} std={self.std:.4g}"
        )
