"""Evaluation harness: metrics, sweep runner, per-figure experiment
definitions, and plain-text reporting (paper Section 5 methodology)."""

from .metrics import DEFAULT_SANITY_BOUND, ErrorSummary, join_error, relative_error
from .diagnostics import SketchHealthReport, sketch_health
from .plots import render_ascii_plot
from .reporting import format_number, render_series, render_table
from .runner import (
    SchemaCache,
    SweepConfig,
    SweepResult,
    TrialRecord,
    make_estimators,
    run_sweep,
)
from .figures import (
    ExperimentScale,
    default_scale,
    full_scale,
    make_census_workload,
    make_shifted_zipf_workload,
    render_figure5,
    render_rows,
    run_baseline_panel,
    run_census,
    run_dyadic_cost,
    run_example1,
    run_figure5,
    run_space_scaling,
    run_threshold_ablation,
    scale_from_env,
)

__all__ = [
    "DEFAULT_SANITY_BOUND",
    "ErrorSummary",
    "ExperimentScale",
    "SchemaCache",
    "SketchHealthReport",
    "SweepConfig",
    "SweepResult",
    "TrialRecord",
    "default_scale",
    "format_number",
    "full_scale",
    "join_error",
    "make_census_workload",
    "make_estimators",
    "make_shifted_zipf_workload",
    "relative_error",
    "render_ascii_plot",
    "render_figure5",
    "render_rows",
    "render_series",
    "render_table",
    "run_baseline_panel",
    "run_census",
    "run_dyadic_cost",
    "run_example1",
    "run_figure5",
    "run_space_scaling",
    "run_sweep",
    "run_threshold_ablation",
    "scale_from_env",
    "sketch_health",
]
