"""Command-line runner for the paper's experiments.

Usage::

    python -m repro.eval list
    python -m repro.eval figure5a
    python -m repro.eval figure5b --full-scale
    python -m repro.eval census --trials 5
    python -m repro.eval example1 dyadic-cost baseline-panel
    python -m repro.eval smoke --metrics-out metrics.json
    python -m repro.eval smoke --trace-out trace.jsonl
    python -m repro.eval smoke --audit-out audits.jsonl
    python -m repro.eval smoke --profile-out run.prof.jsonl \\
        --timeseries-out run.ts.jsonl

Each experiment prints the same table its ``benchmarks/`` counterpart
emits; ``--full-scale`` switches the workload sizes exactly like setting
``REPRO_FULL_SCALE=1``.  ``--metrics-out PATH`` enables the
:mod:`repro.obs` instrumentation for the run and writes the metrics
snapshot to ``PATH`` as JSON; ``--trace-out PATH`` enables the
:mod:`repro.trace` span tracer and writes the trace as JSONL (convert it
with ``python -m repro.trace convert``); ``--audit-out PATH`` enables the
:mod:`repro.monitor` estimate-quality audits and writes every
``QueryAudit`` (plus drift alerts) to ``PATH`` as JSONL — serve it with
``python -m repro.monitor serve``.  ``--profile-out PATH`` starts the
:mod:`repro.profile` sampling profiler for the run and writes the stack
samples as JSONL (inspect with ``python -m repro.profile top``);
``--timeseries-out PATH`` starts the flight recorder and writes the
telemetry frames as JSONL — both are served by ``python -m repro.monitor
serve --profile ... --timeseries ...`` and its ``/dashboard`` page.  The
``smoke`` experiment additionally runs a shadow-audited engine workload
while audits are on, so the JSONL contains realized-error verdicts too.
See docs/OBSERVABILITY.md and DESIGN.md for the catalogue and experiment
index.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from ..monitor import AUDIT
from ..obs import METRICS, write_snapshot
from ..profile import (
    PROFILER,
    RECORDER,
    write_profile_jsonl,
    write_timeseries_jsonl,
)
from ..trace import TRACER, write_trace_jsonl

from .figures import (
    ExperimentScale,
    default_scale,
    full_scale,
    render_figure5,
    render_rows,
    run_baseline_panel,
    run_census,
    run_dyadic_cost,
    run_example1,
    run_figure5,
    run_space_scaling,
    run_threshold_ablation,
)
from .plots import render_ascii_plot
from .reporting import render_series, render_table


def _figure5_output(title: str, results) -> str:
    table = render_figure5(title, results)
    series = {}
    for shift, result in results.items():
        for method, points in result.series_by_space().items():
            series[f"{method} s={shift}"] = points
    chart = render_ascii_plot(title, "space (words)", "error", series)
    return f"{table}\n\n{chart}"


def _figure5a(scale: ExperimentScale, trials: int | None) -> str:
    if trials:
        scale = scale.with_trials(trials)
    results = run_figure5(1.0, (100, 200, 300), scale)
    return _figure5_output(f"Figure 5(a) [{scale.label}]", results)


def _figure5b(scale: ExperimentScale, trials: int | None) -> str:
    if trials:
        scale = scale.with_trials(trials)
    results = run_figure5(1.5, (30, 50), scale)
    return _figure5_output(f"Figure 5(b) [{scale.label}]", results)


def _census(scale: ExperimentScale, trials: int | None) -> str:
    result = run_census(trials=trials or 3)
    return render_series(
        "Census (synthetic stand-in)", "space (words)", result.series_by_space()
    )


def _example1(scale: ExperimentScale, trials: int | None) -> str:
    result = run_example1()
    return render_table(
        ["quantity", "value"],
        [[key, value] for key, value in result.items()],
        title="Example 1 (reconstructed)",
    )


def _space_scaling(scale: ExperimentScale, trials: int | None) -> str:
    rows = run_space_scaling(1.0, (20, 100, 300, 1000), scale, trials=trials or 3)
    return render_rows("Space for 15% error vs join size", rows)


def _dyadic_cost(scale: ExperimentScale, trials: int | None) -> str:
    return render_rows("Dyadic SKIMDENSE descent cost", run_dyadic_cost())


def _threshold_ablation(scale: ExperimentScale, trials: int | None) -> str:
    rows = run_threshold_ablation(
        (0.1, 0.3, 1.0, 3.0, 10.0, 1e6), 1.2, 50, scale, trials=trials or 3
    )
    return render_rows("Skim-threshold ablation", rows)


def _baseline_panel(scale: ExperimentScale, trials: int | None) -> str:
    rows = run_baseline_panel(scale, trials=trials or 3)
    return render_rows("Baseline panel (equal space)", rows)


def _smoke(scale: ExperimentScale, trials: int | None) -> str:
    """Seconds-scale end-to-end workload; drives the update, skim and join
    estimation paths so ``--metrics-out`` snapshots cover them (this is
    what ``make metrics-smoke`` runs)."""
    from .runner import SweepConfig

    tiny = ExperimentScale(
        domain_size=1 << 10,
        stream_total=10_000,
        sweep=SweepConfig(
            widths=(32,), depths=(3,), space_budgets=(96,), trials=trials or 1, seed=1
        ),
        label="smoke",
    )
    results = run_figure5(1.0, (5,), tiny, methods=("skimmed",))
    output = _figure5_output("Smoke (tiny Figure 5 workload)", results)
    if AUDIT.enabled:
        output += "\n\n" + _audited_query_segment()
    return output


def _audited_query_segment() -> str:
    """Shadow-audited engine workload (runs only while audits are on).

    Registers several Zipf streams on one engine with a
    :class:`~repro.monitor.shadow.ShadowAuditor` attached (sample rate
    1.0 — exact on this tiny domain), then answers a battery of join and
    self-join queries.  Every answer lands in ``repro.monitor.AUDIT``
    with a realized-error verdict, which is what ``--audit-out`` writes
    and ``make monitor-smoke`` scrapes.
    """
    import numpy as np

    from ..core.config import SketchParameters
    from ..monitor import ShadowAuditor
    from ..streams.engine import StreamEngine
    from ..streams.query import JoinCountQuery, SelfJoinQuery
    from ..streams.generators import shifted_zipf_pair

    domain_size = 1 << 10
    engine = StreamEngine(
        domain_size, SketchParameters(width=128, depth=7), synopsis="skimmed", seed=7
    )
    shadow = ShadowAuditor(sample_rate=1.0, window=64, coverage_target=0.9)
    engine.attach_shadow(shadow)

    rng = np.random.default_rng(2026)
    names: list[str] = []
    for index, shift in enumerate((0, 16, 32, 48, 64, 80)):
        vec, _ = shifted_zipf_pair(domain_size, 5_000, 1.0, shift, rng)
        name = f"s{index}"
        engine.register_stream(name)
        values = vec.support()
        engine.process_bulk(name, values, vec.counts[values])
        names.append(name)

    queries = [
        JoinCountQuery(left, right)
        for left, right in zip(names, names[1:] + names[:1])
    ] + [SelfJoinQuery(name) for name in names]
    for query in queries:
        engine.answer(query)

    audits = [a for a in AUDIT.audits() if a.covered is not None]
    covered = sum(1 for a in audits if a.covered)
    lines = [
        "Shadow-audited queries (engine + ShadowAuditor, exact mirror):",
        f"  queries audited        : {len(audits)}",
        f"  realized error in CI   : {covered}/{len(audits)}",
        f"  drift alerts           : {len(AUDIT.alerts)}",
    ]
    return "\n".join(lines)


EXPERIMENTS: dict[str, Callable[[ExperimentScale, int | None], str]] = {
    "figure5a": _figure5a,
    "figure5b": _figure5b,
    "census": _census,
    "example1": _example1,
    "space-scaling": _space_scaling,
    "dyadic-cost": _dyadic_cost,
    "threshold-ablation": _threshold_ablation,
    "baseline-panel": _baseline_panel,
    "smoke": _smoke,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval",
        description="Regenerate the paper's evaluation artifacts.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help=f"experiment ids, or 'list'; known: {', '.join(EXPERIMENTS)}",
    )
    parser.add_argument(
        "--full-scale",
        action="store_true",
        help="use the larger workload configuration (slower)",
    )
    parser.add_argument(
        "--trials", type=int, default=None, help="override the trial count"
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="enable repro.obs instrumentation and write the metrics "
        "snapshot to PATH as JSON",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="enable repro.trace span tracing and write the trace to "
        "PATH as JSONL",
    )
    parser.add_argument(
        "--audit-out",
        metavar="PATH",
        default=None,
        help="enable repro.monitor estimate-quality audits and write "
        "every QueryAudit to PATH as JSONL",
    )
    parser.add_argument(
        "--profile-out",
        metavar="PATH",
        default=None,
        help="start the repro.profile sampling profiler and write the "
        "stack samples to PATH as JSONL",
    )
    parser.add_argument(
        "--timeseries-out",
        metavar="PATH",
        default=None,
        help="start the repro.profile flight recorder and write the "
        "telemetry frames to PATH as JSONL",
    )
    args = parser.parse_args(argv)

    if args.experiments == ["list"]:
        for name in EXPERIMENTS:
            print(name)
        return 0

    unknown = [e for e in args.experiments if e not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s) {unknown}; try 'list'")

    scale = full_scale() if args.full_scale else default_scale()
    # Fail fast on unwritable paths: outputs are written *after* the
    # experiments, and losing a long run to a typo would sting.
    for flag, path in (
        ("--metrics-out", args.metrics_out),
        ("--trace-out", args.trace_out),
        ("--audit-out", args.audit_out),
        ("--profile-out", args.profile_out),
        ("--timeseries-out", args.timeseries_out),
    ):
        if path:
            try:
                with open(path, "a", encoding="utf-8"):
                    pass
            except OSError as exc:
                parser.error(f"cannot write {flag} path: {exc}")
    if args.metrics_out:
        METRICS.reset()
        METRICS.enable()
    if args.trace_out:
        TRACER.reset()
        TRACER.enable()
    if args.audit_out:
        AUDIT.reset()
        AUDIT.enable()
    if args.profile_out:
        PROFILER.reset()
        PROFILER.start()
    if args.timeseries_out:
        RECORDER.reset()
        RECORDER.start()
    try:
        for name in args.experiments:
            # Timer powers the printed wall-clock line even with telemetry
            # off (it only *records* when enabled).
            timer = METRICS.timer("eval.experiment.seconds")  # repro: noqa[R3] -- timer also powers the printed wall-clock line with telemetry off
            print(f"== {name} ==")
            with timer:
                if METRICS.enabled:
                    METRICS.count("eval.experiments")
                print(EXPERIMENTS[name](scale, args.trials))
            print(f"[{name} took {timer.elapsed:.1f}s]\n")
        if args.metrics_out:
            write_snapshot(args.metrics_out, METRICS.snapshot())
            print(f"[metrics snapshot written to {args.metrics_out}]")
        if args.trace_out:
            write_trace_jsonl(args.trace_out, TRACER.snapshot())
            print(f"[trace written to {args.trace_out}]")
        if args.audit_out:
            lines = AUDIT.write_jsonl(args.audit_out)
            print(f"[{lines} audit records written to {args.audit_out}]")
        if args.profile_out:
            PROFILER.stop()
            snapshot = PROFILER.snapshot()
            write_profile_jsonl(args.profile_out, snapshot)
            print(
                f"[{len(snapshot['samples'])} stack samples written to "
                f"{args.profile_out}]"
            )
        if args.timeseries_out:
            RECORDER.stop()
            ts = RECORDER.snapshot()
            write_timeseries_jsonl(args.timeseries_out, ts)
            print(
                f"[{len(ts['frames'])} telemetry frames written to "
                f"{args.timeseries_out}]"
            )
    finally:
        if args.metrics_out:
            METRICS.disable()
        if args.trace_out:
            TRACER.disable()
        if args.audit_out:
            AUDIT.disable()
        if args.profile_out:
            PROFILER.stop()
        if args.timeseries_out:
            RECORDER.stop()
    return 0


if __name__ == "__main__":
    sys.exit(main())
