"""ASCII line charts for experiment series (terminal-native "figures").

The paper's evaluation artifacts are log-scale error-vs-space plots; the
benchmark harness prints the underlying rows, and this module renders
them as actual charts a terminal can show, so ``python -m repro.eval
figure5a`` output *looks* like Figure 5 and crossovers are visible at a
glance.  Pure string manipulation, no plotting dependency.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence
from ..errors import ParameterError

#: Glyphs assigned to series, in declaration order.
_MARKERS = "xo*+#@%&"


def _log_scaler(values: Sequence[float], size: int):
    """A function mapping positive values onto ``[0, size)`` on a log scale.

    The scale is fixed by the *global* extremes of ``values`` so that every
    series shares one coordinate system (scaling each series on its own
    range would silently fake convergence).
    """
    logs = [math.log10(max(v, 1e-12)) for v in values]
    low, high = min(logs), max(logs)

    def scale(value: float) -> int:
        if high == low:
            return size // 2
        position = (math.log10(max(value, 1e-12)) - low) / (high - low)
        return min(size - 1, int(round(position * (size - 1))))

    return scale


def render_ascii_plot(
    title: str,
    x_label: str,
    y_label: str,
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 64,
    height: int = 16,
) -> str:
    """Render (x, y) series as a log-log ASCII scatter/line chart.

    Parameters
    ----------
    title, x_label, y_label:
        Chart annotations.
    series:
        Mapping of series name to (x, y) points; y values must be
        positive (errors, sizes, times — everything we plot is).
    width, height:
        Plot-area size in characters.
    """
    if not series or all(not points for points in series.values()):
        return f"{title}\n(no data)"
    if width < 8 or height < 4:
        raise ParameterError("plot area must be at least 8x4 characters")

    all_x = [x for points in series.values() for x, _ in points]
    all_y = [max(y, 1e-12) for points in series.values() for _, y in points]
    scale_x = _log_scaler(all_x, width)
    scale_y = _log_scaler(all_y, height)

    grid = [[" "] * width for _ in range(height)]
    for (name, points), marker in zip(series.items(), _MARKERS):
        if not points:
            continue
        xs = [scale_x(x) for x, _ in points]
        ys = [scale_y(max(y, 1e-12)) for _, y in points]
        previous = None
        for column, row in zip(xs, ys):
            flipped = height - 1 - row
            grid[flipped][column] = marker
            if previous is not None:
                _draw_segment(grid, previous, (column, flipped), marker)
            previous = (column, flipped)

    y_high, y_low = max(all_y), min(all_y)
    lines = [title]
    for index, row in enumerate(grid):
        if index == 0:
            label = f"{y_high:8.2g} |"
        elif index == height - 1:
            label = f"{y_low:8.2g} |"
        elif index == height // 2:
            label = f"{y_label:>8.8} |"
        else:
            label = "         |"
        lines.append(label + "".join(row))
    lines.append("         +" + "-" * width)
    x_axis = f"{min(all_x):<10.4g}{x_label:^{max(0, width - 20)}}{max(all_x):>10.4g}"
    lines.append("          " + x_axis)
    legend = "   ".join(
        f"{marker} = {name}" for (name, _), marker in zip(series.items(), _MARKERS)
    )
    lines.append("          " + legend)
    return "\n".join(lines)


def _draw_segment(grid, start, end, marker) -> None:
    """Sparse linear interpolation between consecutive points (dots)."""
    (x0, y0), (x1, y1) = start, end
    steps = max(abs(x1 - x0), abs(y1 - y0))
    for step in range(1, steps):
        x = x0 + round((x1 - x0) * step / steps)
        y = y0 + round((y1 - y0) * step / steps)
        if grid[y][x] == " ":
            grid[y][x] = "."
