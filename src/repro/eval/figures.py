"""Per-experiment definitions: one entry point per paper table/figure.

Each ``run_*`` function regenerates the data behind one evaluation
artifact of the paper (see the experiment index in DESIGN.md) and returns
plain data; the ``benchmarks/`` targets call these and print the rendered
rows.  Everything is deterministic given the scale's seed.

Scale: the paper streams 4M elements over a 256K-value domain.  The
default scale preserves the workload *shape* (same Zipf parameters,
same shift knob, same N/domain flavour) at laptop-friendly sizes; set
``REPRO_FULL_SCALE=1`` for a larger configuration (see DESIGN.md,
Substitutions, for why absolute scale does not change the estimator math).
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, replace
from typing import Mapping, Sequence

import numpy as np

from ..baselines.bifocal import BifocalEstimator
from ..baselines.partitioned import plan_partitions, PartitionedAGMSSchema
from ..core.estimator import SkimmedSketchSchema
from ..core.skim import skim_dense_dyadic
from ..sketches.dyadic import DyadicSketchSchema
from ..streams.generators import (
    census_like_pair,
    shifted_zipf_pair,
    zipf_frequencies,
)
from ..streams.model import FrequencyVector
from .metrics import join_error
from .reporting import render_series, render_table
from .runner import (
    SchemaCache,
    SweepConfig,
    SweepResult,
    WorkloadFn,
    make_estimators,
    run_sweep,
)


@dataclass(frozen=True)
class ExperimentScale:
    """Workload scale for the figure experiments."""

    domain_size: int
    stream_total: int
    sweep: SweepConfig
    label: str

    def with_trials(self, trials: int) -> "ExperimentScale":
        """Same scale with a different trial count."""
        return replace(self, sweep=replace(self.sweep, trials=trials))


def default_scale() -> ExperimentScale:
    """Laptop scale: 16K domain, 400K elements per stream, 3 trials."""
    return ExperimentScale(
        domain_size=1 << 14,
        stream_total=400_000,
        sweep=SweepConfig(trials=3),
        label="default (domain=2^14, N=400K)",
    )


def full_scale() -> ExperimentScale:
    """Larger scale: 64K domain, 4M elements per stream, 5 trials.

    (The paper's 256K domain is reachable too, but the basic-AGMS
    baseline's projection cache would exceed 1 GB there; 64K keeps the
    full 25-shape grid tractable while preserving every qualitative
    finding.)
    """
    return ExperimentScale(
        domain_size=1 << 16,
        stream_total=4_000_000,
        sweep=SweepConfig(trials=5),
        label="full (domain=2^16, N=4M)",
    )


def scale_from_env() -> ExperimentScale:
    """``full_scale()`` iff ``REPRO_FULL_SCALE`` is set to a truthy value."""
    flag = os.environ.get("REPRO_FULL_SCALE", "")
    if flag and flag not in ("0", "false", "no"):
        return full_scale()
    return default_scale()


# ---------------------------------------------------------------------------
# E1 / E2: Figure 5(a) and 5(b) — error vs. space, basic AGMS vs skimmed
# ---------------------------------------------------------------------------


def make_shifted_zipf_workload(
    domain_size: int, total: int, z: float, shift: int
) -> WorkloadFn:
    """Workload factory for the paper's synthetic experiments.

    Each trial draws two independent multinomial streams: Zipf(z) and
    Zipf(z) right-shifted by ``shift``.
    """

    def workload(trial_seed: int) -> tuple[FrequencyVector, FrequencyVector]:
        rng = np.random.default_rng(trial_seed)
        return shifted_zipf_pair(domain_size, total, z, shift, rng)

    return workload


def run_figure5(
    z: float,
    shifts: Sequence[int],
    scale: ExperimentScale,
    methods: Sequence[str] = ("basic_agms", "skimmed"),
) -> dict[int, SweepResult]:
    """Run one Figure-5 panel: one Zipf parameter, several shifts.

    Returns per-shift sweep results; one shared schema cache keeps the
    per-shape hash families and AGMS projections across shifts and trials.
    """
    cache = SchemaCache(scale.domain_size)
    estimators = make_estimators(cache, methods)
    results: dict[int, SweepResult] = {}
    for shift in shifts:
        workload = make_shifted_zipf_workload(
            scale.domain_size, scale.stream_total, z, shift
        )
        results[shift] = run_sweep(workload, estimators, scale.sweep)
    cache.clear()
    return results


def render_figure5(
    title: str, results: Mapping[int, SweepResult]
) -> str:
    """Render a Figure-5 panel as a space-vs-error table (all series)."""
    series: dict[str, list[tuple[float, float]]] = {}
    for shift, result in results.items():
        for method, points in result.series_by_space().items():
            series[f"{method}, shift={shift}"] = points
    return render_series(title, "space (words)", series)


# ---------------------------------------------------------------------------
# E3: Census experiment (synthetic stand-in; see DESIGN.md Substitutions)
# ---------------------------------------------------------------------------


def make_census_workload(
    num_records: int = 159_434, domain_size: int = 1 << 16
) -> WorkloadFn:
    """Workload factory for the Census-like wage/overtime join."""

    def workload(trial_seed: int) -> tuple[FrequencyVector, FrequencyVector]:
        return census_like_pair(num_records, domain_size, seed=trial_seed)

    return workload


def run_census(
    trials: int = 3,
    seed: int = 1,
    methods: Sequence[str] = ("basic_agms", "skimmed"),
) -> SweepResult:
    """Run the Census experiment (domain 2**16, 159,434 records per stream).

    The shape grid is a subset of the paper's (3 widths x 2 depths) because
    the 2**16-value domain makes each basic-AGMS projection large; the
    schema cache is bounded so only the current shape's projection is held
    in memory.
    """
    domain_size = 1 << 16
    cache = SchemaCache(domain_size, max_entries=4)
    estimators = make_estimators(cache, methods)
    config = SweepConfig(
        widths=(50, 150, 250),
        depths=(11, 35),
        space_budgets=(1_000, 2_000, 4_000, 8_000, 15_000),
        trials=trials,
        seed=seed,
    )
    result = run_sweep(
        make_census_workload(domain_size=domain_size), estimators, config
    )
    cache.clear()
    return result


# ---------------------------------------------------------------------------
# E4: Example 1 (Section 3) — worked skimming error-bound example
# ---------------------------------------------------------------------------


def run_example1(width: int = 16) -> dict[str, float]:
    """Reconstruct the paper's Example 1 error-bound comparison.

    A small domain with two very dense values per stream and a sparse
    tail; the maximum additive error of basic sketching is
    ``2 sqrt(SJ(f) SJ(g) / width)`` while the skimmed bound replaces the
    full self-join sizes by the residual ones (plus the exactly-computed
    dense-dense term).  Returns both bounds and their ratio — the paper's
    example concludes the skimmed space requirement is smaller "by more
    than a factor of 4".
    """
    domain = 16
    f = FrequencyVector.zeros(domain)
    g = FrequencyVector.zeros(domain)
    f.apply_bulk(np.arange(domain), np.asarray([30.0, 20.0] + [1.0] * 14))
    g.apply_bulk(np.arange(domain), np.asarray([25.0, 15.0] + [1.0] * 14))
    threshold = 10.0

    def residual(vec: FrequencyVector) -> FrequencyVector:
        counts = vec.counts.copy()
        counts[counts >= threshold] = 0.0
        return FrequencyVector(counts)

    f_res, g_res = residual(f), residual(g)
    basic_bound = 2.0 * math.sqrt(f.self_join_size() * g.self_join_size() / width)
    skimmed_bound = (
        2.0 * math.sqrt(f.self_join_size() * g_res.self_join_size() / width)
        + 2.0 * math.sqrt(f_res.self_join_size() * g.self_join_size() / width)
        + 2.0 * math.sqrt(f_res.self_join_size() * g_res.self_join_size() / width)
    )
    return {
        "join_size": f.join_size(g),
        "basic_max_error": basic_bound,
        "skimmed_max_error": skimmed_bound,
        "improvement_factor": basic_bound / skimmed_bound,
    }


# ---------------------------------------------------------------------------
# E6: space needed for target accuracy as the join shrinks (lower-bound shape)
# ---------------------------------------------------------------------------


def run_space_scaling(
    z: float,
    shifts: Sequence[int],
    scale: ExperimentScale,
    target_error: float = 0.15,
    depth: int = 11,
    widths: Sequence[int] = (25, 50, 100, 200, 400, 800, 1600),
    trials: int = 3,
) -> list[dict[str, float]]:
    """Minimum width reaching ``target_error`` per method, per shift.

    As the shift grows the join size ``J`` shrinks, and Theorem 5 says the
    skimmed sketch's space need grows like ``N^2 / J`` while basic
    sketching's grows like its square; the returned rows expose that
    divergence.  A method that misses the target at every tested width
    reports ``inf``.
    """
    cache = SchemaCache(scale.domain_size)
    estimators = make_estimators(cache, ("basic_agms", "skimmed"))
    rows: list[dict[str, float]] = []
    for shift in shifts:
        workload = make_shifted_zipf_workload(
            scale.domain_size, scale.stream_total, z, shift
        )
        draws = [workload(scale.sweep.seed + t) for t in range(trials)]
        actuals = [f.join_size(g) for f, g in draws]
        row: dict[str, float] = {
            "shift": float(shift),
            "join_size": float(np.mean(actuals)),
        }
        for method, estimator in estimators.items():
            needed = float("inf")
            for width in widths:
                errors = [
                    join_error(
                        estimator(f, g, width, depth, scale.sweep.seed), actual
                    )
                    for (f, g), actual in zip(draws, actuals)
                ]
                if float(np.mean(errors)) <= target_error:
                    needed = float(width * depth)
                    break
            row[f"space_{method}"] = needed
        rows.append(row)
    cache.clear()
    return rows


# ---------------------------------------------------------------------------
# E7: dyadic skim cost — O((N/T) log D) descent vs O(D) scan
# ---------------------------------------------------------------------------


def run_dyadic_cost(
    domain_sizes: Sequence[int] = (1 << 12, 1 << 14, 1 << 16, 1 << 18),
    num_heavy: int = 32,
    heavy_mass: int = 1_000,
    width: int = 512,
    depth: int = 7,
    seed: int = 7,
) -> list[dict[str, float]]:
    """Point-estimate counts for dyadic descent vs full scan per domain size.

    Streams have ``num_heavy`` dense values (frequency ``heavy_mass``) and
    a light uniform tail; the descent's work should stay nearly flat in
    ``log(domain)`` while the flat scan grows linearly with the domain.
    Also verifies the descent recovers all heavy values (reported as
    recall).
    """
    rows: list[dict[str, float]] = []
    rng = np.random.default_rng(seed)
    for domain_size in domain_sizes:
        heavy_values = rng.choice(domain_size, size=num_heavy, replace=False)
        counts = np.zeros(domain_size)
        counts[heavy_values] = float(heavy_mass)
        tail_values = rng.choice(domain_size, size=domain_size // 4, replace=False)
        counts[tail_values] += 1.0
        freqs = FrequencyVector(counts)

        schema = DyadicSketchSchema(
            width, depth, domain_size, seed=seed, coarse_cutoff=64
        )
        sketch = schema.sketch_of(freqs)
        threshold = heavy_mass / 2.0
        descent_cost = sketch.estimated_descent_cost(threshold)
        skim, _ = skim_dense_dyadic(sketch, threshold)
        recall = len(set(skim.dense_values) & set(heavy_values)) / num_heavy
        rows.append(
            {
                "domain_size": float(domain_size),
                "descent_estimates": float(descent_cost),
                "flat_scan_estimates": float(domain_size),
                "saving_factor": float(domain_size) / max(descent_cost, 1),
                "heavy_recall": recall,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E10: skim-threshold ablation
# ---------------------------------------------------------------------------


def run_threshold_ablation(
    multipliers: Sequence[float],
    z: float,
    shift: int,
    scale: ExperimentScale,
    width: int = 200,
    depth: int = 11,
    trials: int = 3,
) -> list[dict[str, float]]:
    """Mean error and dense-value count per threshold multiplier ``c``.

    ``c -> infinity`` degenerates to unskimmed Fast-AGMS; tiny ``c``
    extracts noise as "dense".  The ablation shows the ``c ~ 1`` regime the
    theory recommends is the sweet spot.
    """
    workload = make_shifted_zipf_workload(
        scale.domain_size, scale.stream_total, z, shift
    )
    rows: list[dict[str, float]] = []
    for multiplier in multipliers:
        schema = SkimmedSketchSchema(
            width,
            depth,
            scale.domain_size,
            seed=scale.sweep.seed,
            threshold_multiplier=multiplier,
        )
        errors, dense_counts = [], []
        for trial in range(trials):
            f, g = workload(scale.sweep.seed + trial)
            actual = f.join_size(g)
            sketch_f = schema.sketch_of(f)
            sketch_g = schema.sketch_of(g)
            breakdown = sketch_f.join_breakdown(sketch_g)
            errors.append(join_error(breakdown.estimate, actual))
            dense_counts.append(breakdown.f_skim.dense_count)
        rows.append(
            {
                "multiplier": float(multiplier),
                "mean_error": float(np.mean(errors)),
                "mean_dense_count": float(np.mean(dense_counts)),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E11: baseline panel — every estimator on one moderate-skew workload
# ---------------------------------------------------------------------------


def run_baseline_panel(
    scale: ExperimentScale,
    z: float = 1.0,
    shift: int = 100,
    width: int = 200,
    depth: int = 11,
    trials: int = 3,
    hint_quality: float = 1.0,
) -> list[dict[str, float]]:
    """Mean error of every estimator at equal space on one workload.

    ``hint_quality`` controls the partitioned-AGMS baseline's a-priori
    statistics: 1.0 hands it the *true* current frequencies (its best
    case); lower values blend in stale/uniform mass, reproducing the
    paper's point that the approach depends on knowledge streams don't
    offer.  Sampling-based methods get ``width * depth`` sample slots —
    the same word budget the sketches get.
    """
    domain_size = scale.domain_size
    space = width * depth
    workload = make_shifted_zipf_workload(domain_size, scale.stream_total, z, shift)
    cache = SchemaCache(domain_size)
    sketch_estimators = make_estimators(
        cache, ("basic_agms", "fast_agms", "skimmed")
    )
    bifocal = BifocalEstimator(sample_size=space)

    per_method: dict[str, list[float]] = {
        name: [] for name in (*sketch_estimators, "reservoir", "bifocal", "partitioned")
    }
    for trial in range(trials):
        trial_seed = scale.sweep.seed + trial
        f, g = workload(trial_seed)
        actual = f.join_size(g)
        rng = np.random.default_rng(trial_seed + 10_000)

        for name, estimator in sketch_estimators.items():
            estimate = estimator(f, g, width, depth, scale.sweep.seed)
            per_method[name].append(join_error(estimate, actual))

        per_method["reservoir"].append(
            join_error(_reservoir_estimate(f, g, space, trial_seed), actual)
        )
        per_method["bifocal"].append(
            join_error(bifocal.estimate(f, g, rng), actual)
        )
        per_method["partitioned"].append(
            join_error(
                _partitioned_estimate(
                    f, g, width, depth, hint_quality, trial_seed
                ),
                actual,
            )
        )
    cache.clear()
    return [
        {"method": name, "mean_error": float(np.mean(errors))}
        for name, errors in per_method.items()
    ]


def _reservoir_estimate(
    f: FrequencyVector, g: FrequencyVector, capacity: int, seed: int
) -> float:
    """Sampling join estimate with ``capacity`` sample slots per stream."""
    from ..baselines.sampling import sample_join_estimate

    rng = np.random.default_rng(seed)
    return sample_join_estimate(f.counts, g.counts, capacity, rng)


def _partitioned_estimate(
    f: FrequencyVector,
    g: FrequencyVector,
    width: int,
    depth: int,
    hint_quality: float,
    seed: int,
) -> float:
    """Partitioned-AGMS estimate with hints of the given quality."""
    uniform_mass = f.total_count() / f.domain_size

    def degrade(vec: FrequencyVector) -> FrequencyVector:
        blended = hint_quality * vec.counts + (1.0 - hint_quality) * uniform_mass
        return FrequencyVector(blended)

    plan = plan_partitions(
        degrade(f), degrade(g), num_partitions=8, averaging_budget=width
    )
    schema = PartitionedAGMSSchema(plan, median=depth, seed=seed)
    return schema.sketch_of(f).est_join_size(schema.sketch_of(g))


# ---------------------------------------------------------------------------
# Shared rendering helpers for dict-row experiments
# ---------------------------------------------------------------------------


def render_rows(title: str, rows: Sequence[Mapping[str, object]]) -> str:
    """Render a list of uniform dict rows as an aligned table."""
    if not rows:
        return f"{title}\n(no rows)"
    headers = list(rows[0])
    return render_table(headers, [[row[h] for h in headers] for row in rows], title)
