"""Synopsis health diagnostics: what is this sketch seeing, and is it
sized right for it?

Operators of a deployed stream monitor can't inspect the raw stream — the
synopsis is all there is.  Fortunately the synopsis itself supports the
introspection that matters:

* estimated stream size, second moment, and a **skew score** (how far the
  second moment sits above the uniform-stream floor ``N²/D`` — the single
  number that predicts whether basic sketching would have struggled and
  how much skimming will help);
* the current skim threshold and how many values would be extracted at it;
* a width recommendation from the Theorem-5 sizing rule, given a target
  accuracy and the stream's own measured statistics.

The report is a plain dataclass (render with ``describe()``), so it can
feed dashboards as easily as terminals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.estimator import SkimmedSketch
from ..core.skim import (
    RESIDUAL_BOUND_FACTOR,
    default_threshold,
    residual_infinity_norm,
    skim_dense,
)
from ..obs import METRICS, MetricsRegistry
from ..errors import ParameterError


@dataclass(frozen=True)
class SketchHealthReport:
    """Snapshot of one skimmed sketch's state and sizing adequacy."""

    width: int
    depth: int
    domain_size: int
    stream_size: float
    estimated_second_moment: float
    skew_score: float
    skim_threshold: float
    dense_value_count: int
    dense_mass_fraction: float
    recommended_width: int | None
    #: ``‖residual‖∞`` of a skim at the current threshold — SKIMDENSE's
    #: Theorem-4 contract says it stays below
    #: ``RESIDUAL_BOUND_FACTOR * skim_threshold`` w.h.p.  The same check
    #: ``repro.monitor`` audits per query.
    residual_linf: float = 0.0
    residual_bound_ok: bool = True

    def describe(self) -> str:
        """Multi-line human-readable rendering of the report."""
        lines = [
            f"sketch {self.width}x{self.depth} over domain {self.domain_size}",
            f"  stream size (N)        : {self.stream_size:,.0f}",
            f"  est. second moment (F2): {self.estimated_second_moment:,.0f}",
            f"  skew score (F2/(N^2/D)): {self.skew_score:,.1f}"
            + ("  [uniform-like]" if self.skew_score < 10 else "  [skewed]"),
            f"  skim threshold (theta) : {self.skim_threshold:,.1f}",
            f"  dense values at theta  : {self.dense_value_count} "
            f"({self.dense_mass_fraction:.1%} of stream mass)",
            f"  residual |.|inf vs 2*theta: {self.residual_linf:,.1f} "
            + ("[ok]" if self.residual_bound_ok else "[VIOLATED]"),
        ]
        if self.recommended_width is not None:
            verdict = (
                "adequate"
                if self.recommended_width <= self.width
                else f"undersized (recommend width >= {self.recommended_width})"
            )
            lines.append(f"  sizing for target error: {verdict}")
        return "\n".join(lines)

    def as_metrics(self, prefix: str = "health") -> dict[str, float]:
        """The report as a flat ``{metric_name: value}`` gauge mapping.

        This is the diagnostics→metrics bridge: the same numbers
        :meth:`describe` prints, shaped for a metrics snapshot (and hence
        for the JSON / Prometheus exporters).
        """
        gauges = {
            f"{prefix}.width": float(self.width),
            f"{prefix}.depth": float(self.depth),
            f"{prefix}.domain_size": float(self.domain_size),
            f"{prefix}.stream_size": float(self.stream_size),
            f"{prefix}.second_moment": float(self.estimated_second_moment),
            f"{prefix}.skew_score": float(self.skew_score),
            f"{prefix}.skim_threshold": float(self.skim_threshold),
            f"{prefix}.dense_values": float(self.dense_value_count),
            f"{prefix}.dense_mass_fraction": float(self.dense_mass_fraction),
            f"{prefix}.residual_linf": float(self.residual_linf),
            f"{prefix}.residual_bound_ok": 1.0 if self.residual_bound_ok else 0.0,
        }
        if self.recommended_width is not None:
            gauges[f"{prefix}.recommended_width"] = float(self.recommended_width)
        return gauges

    def record(
        self, registry: MetricsRegistry | None = None, prefix: str = "health"
    ) -> None:
        """Publish the report's gauges into a registry (default: the global one).

        A no-op while the registry is disabled, like every other hook.
        """
        registry = registry if registry is not None else METRICS
        for name, value in self.as_metrics(prefix).items():
            registry.gauge(name, value)


def sketch_health(
    sketch: SkimmedSketch,
    target_error: float | None = None,
    target_join_size: float | None = None,
) -> SketchHealthReport:
    """Build a :class:`SketchHealthReport` from a live skimmed sketch.

    Parameters
    ----------
    sketch:
        The synopsis to inspect (flat mode; dyadic sketches are inspected
        through their base level).
    target_error, target_join_size:
        When both are given, the report also checks the Theorem-5 sizing
        rule ``width >= N**2 / (target_error * target_join_size)`` against
        the sketch's actual width.
    """
    inner = sketch._inner.base_sketch if sketch.schema.dyadic else sketch._inner  # noqa: SLF001
    n = inner.absolute_mass
    f2 = max(inner.est_self_join_size(), 0.0)
    uniform_floor = (n * n / inner.domain_size) if n > 0 else 0.0
    skew_score = f2 / uniform_floor if uniform_floor > 0 else 0.0

    threshold = default_threshold(inner, sketch.schema.threshold_multiplier)
    if math.isfinite(threshold):
        skim, skimmed = skim_dense(inner, threshold)
        dense_count = skim.dense_count
        dense_fraction = skim.dense_mass() / n if n > 0 else 0.0
        residual_linf = residual_infinity_norm(skimmed)
        bound_ok = residual_linf < RESIDUAL_BOUND_FACTOR * threshold
    else:
        dense_count, dense_fraction = 0, 0.0
        residual_linf, bound_ok = 0.0, True

    recommended = None
    if target_error is not None and target_join_size is not None:
        if target_error <= 0 or target_join_size <= 0:
            raise ParameterError("target_error and target_join_size must be positive")
        recommended = max(1, math.ceil(n * n / (target_error * target_join_size)))

    return SketchHealthReport(
        width=inner.width,
        depth=inner.depth,
        domain_size=inner.domain_size,
        stream_size=n,
        estimated_second_moment=f2,
        skew_score=skew_score,
        skim_threshold=threshold,
        dense_value_count=dense_count,
        dense_mass_fraction=min(max(dense_fraction, 0.0), 1.0),
        recommended_width=recommended,
        residual_linf=residual_linf,
        residual_bound_ok=bound_ok,
    )
