"""Experiment driver reproducing the paper's evaluation methodology (§5.1).

The paper's space sweep works like this: for each space budget, consider
sketch shapes with ``s1`` (width / averaging) in {50..250 step 50} and
``s2`` (depth / median) in {11..59 step 12} whose product lands in the
budget, run each shape over several independent trials, and average the
symmetric errors over (shape, trial) pairs.  Both competing methods get
the *same number of counter words* at every point.

This module provides:

* :class:`SweepConfig` — the grids, budgets, trial count and scale knobs;
* estimator adapters (:func:`skimmed_estimator`, :func:`agms_estimator`,
  :func:`hash_estimator` — i.e. unskimmed Fast-AGMS) with a per-config
  schema cache so hash/sign families (and the AGMS projection cache) are
  built once per shape, not once per trial;
* :func:`run_sweep` — the generic driver, returning tidy
  :class:`TrialRecord` rows plus aggregation helpers.

Workloads are callables ``trial_seed -> (f, g)`` over frequency vectors;
ground truth is computed exactly per trial.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from ..core.estimator import SkimmedSketchSchema
from ..sketches.agms import AGMSSchema
from ..sketches.hash_sketch import HashSketchSchema
from ..streams.model import FrequencyVector
from .metrics import ErrorSummary, join_error
from ..errors import ParameterError

#: A workload draws one trial's pair of stream frequency vectors.
WorkloadFn = Callable[[int], tuple[FrequencyVector, FrequencyVector]]

#: An estimator maps (f, g, width, depth, seed) to a join-size estimate.
EstimatorFn = Callable[[FrequencyVector, FrequencyVector, int, int, int], float]


@dataclass(frozen=True)
class SweepConfig:
    """Grids and scale for one space-sweep experiment.

    Defaults follow the paper's §5.1 grids; ``space_budgets`` buckets the
    25 (width, depth) shapes by their counter product.  A shape belongs to
    the smallest budget ``B`` with ``width * depth <= B``.
    """

    widths: tuple[int, ...] = (50, 100, 150, 200, 250)
    depths: tuple[int, ...] = (11, 23, 35, 47, 59)
    space_budgets: tuple[int, ...] = (1_000, 2_000, 4_000, 8_000, 15_000)
    trials: int = 5
    seed: int = 1
    #: When true, each trial also re-draws the estimators' hash/sign
    #: randomness (seed + trial); the default keeps the synopsis fixed and
    #: varies only the data, as a deployed synopsis would experience.
    vary_estimator_seed: bool = False

    def shapes(self) -> list[tuple[int, int]]:
        """All (width, depth) grid shapes that fit the largest budget."""
        limit = max(self.space_budgets)
        return [
            (w, d) for w in self.widths for d in self.depths if w * d <= limit
        ]

    def budget_of(self, width: int, depth: int) -> int:
        """The smallest configured budget accommodating this shape."""
        space = width * depth
        for budget in sorted(self.space_budgets):
            if space <= budget:
                return budget
        raise ParameterError(f"shape {width}x{depth} exceeds every budget")


@dataclass(frozen=True)
class TrialRecord:
    """One (method, shape, trial) observation."""

    method: str
    width: int
    depth: int
    space: int
    budget: int
    trial: int
    estimate: float
    actual: float
    error: float


@dataclass
class SweepResult:
    """All trial records of one sweep, with aggregation helpers."""

    records: list[TrialRecord] = field(default_factory=list)

    def methods(self) -> list[str]:
        """Distinct method names, in first-seen order."""
        seen: dict[str, None] = {}
        for record in self.records:
            seen.setdefault(record.method, None)
        return list(seen)

    def errors_for(self, method: str, budget: int | None = None) -> list[float]:
        """Raw error observations for a method (optionally one budget)."""
        return [
            r.error
            for r in self.records
            if r.method == method and (budget is None or r.budget == budget)
        ]

    def series_by_space(self) -> dict[str, list[tuple[float, float]]]:
        """Per-method (budget, mean error) series — the figure-5 y-values."""
        series: dict[str, list[tuple[float, float]]] = {}
        budgets = sorted({r.budget for r in self.records})
        for method in self.methods():
            points = []
            for budget in budgets:
                errors = self.errors_for(method, budget)
                if errors:
                    points.append((float(budget), float(np.mean(errors))))
            series[method] = points
        return series

    def summary_for(self, method: str) -> ErrorSummary:
        """Overall error summary for one method across the whole sweep."""
        return ErrorSummary.of(self.errors_for(method))

    def improvement_factors(
        self, baseline: str, challenger: str
    ) -> list[tuple[float, float]]:
        """Per-budget ``baseline_error / challenger_error`` ratios."""
        base = dict(self.series_by_space()[baseline])
        chal = dict(self.series_by_space()[challenger])
        return [
            (budget, base[budget] / max(chal[budget], 1e-12))
            for budget in sorted(set(base) & set(chal))
        ]

    def error_spread_by_space(self) -> dict[str, list[tuple[float, float]]]:
        """Per-method (budget, error standard deviation) series.

        The paper's §5.2 observation that basic sketching shows "much more
        variance in the error" than skimming is checked against this.
        """
        series: dict[str, list[tuple[float, float]]] = {}
        budgets = sorted({r.budget for r in self.records})
        for method in self.methods():
            points = []
            for budget in budgets:
                errors = self.errors_for(method, budget)
                if errors:
                    points.append((float(budget), float(np.std(errors))))
            series[method] = points
        return series

    def to_csv(self, destination) -> None:
        """Write all trial records as CSV (path or text file object).

        Columns match :class:`TrialRecord`; handy for external plotting of
        the regenerated figures.
        """
        import csv
        from contextlib import nullcontext
        from pathlib import Path

        columns = [
            "method", "width", "depth", "space", "budget",
            "trial", "estimate", "actual", "error",
        ]
        opener = (
            open(destination, "w", newline="")
            if isinstance(destination, (str, Path))
            else nullcontext(destination)
        )
        with opener as handle:
            writer = csv.writer(handle)
            writer.writerow(columns)
            for record in self.records:
                writer.writerow([getattr(record, column) for column in columns])


class SchemaCache:
    """Per-sweep cache of sketch schemas keyed by (kind, width, depth, seed).

    Hash/sign families (and, for AGMS, the projection cache over the
    domain) are expensive relative to per-trial sketch loading, and the
    estimator's randomness should be held fixed while the *data* varies
    across trials — matching how a deployed synopsis would behave.

    ``max_entries`` bounds how many schemas stay alive at once (oldest
    evicted first).  The sweep runner visits shapes in the outer loop, so
    a small bound keeps memory flat on large domains, where each cached
    AGMS projection matrix can run to hundreds of megabytes.
    """

    def __init__(
        self,
        domain_size: int,
        enable_agms_projection: bool = True,
        max_entries: int | None = None,
    ):
        if max_entries is not None and max_entries < 1:
            raise ParameterError(f"max_entries must be >= 1, got {max_entries}")
        self.domain_size = domain_size
        self.enable_agms_projection = enable_agms_projection
        self.max_entries = max_entries
        self._cache: dict[tuple, object] = {}

    def skimmed(self, width: int, depth: int, seed: int) -> SkimmedSketchSchema:
        """Skimmed-sketch schema for a shape (cached)."""
        key = ("skimmed", width, depth, seed)
        if key not in self._cache:
            self._store(
                key, SkimmedSketchSchema(width, depth, self.domain_size, seed=seed)
            )
        return self._cache[key]  # type: ignore[return-value]

    def hash(self, width: int, depth: int, seed: int) -> HashSketchSchema:
        """Plain hash-sketch schema for a shape (cached)."""
        key = ("hash", width, depth, seed)
        if key not in self._cache:
            self._store(
                key, HashSketchSchema(width, depth, self.domain_size, seed=seed)
            )
        return self._cache[key]  # type: ignore[return-value]

    def agms(self, averaging: int, median: int, seed: int) -> AGMSSchema:
        """Basic-AGMS schema for a shape (cached; projection pre-built)."""
        key = ("agms", averaging, median, seed)
        if key not in self._cache:
            schema = AGMSSchema(averaging, median, self.domain_size, seed=seed)
            if self.enable_agms_projection:
                try:
                    schema.enable_projection_cache()
                except ValueError:
                    pass  # domain too large to cache; fall back to streaming path
            self._store(key, schema)
        return self._cache[key]  # type: ignore[return-value]

    def _store(self, key: tuple, schema: object) -> None:
        if self.max_entries is not None:
            while len(self._cache) >= self.max_entries:
                self._cache.pop(next(iter(self._cache)))
        self._cache[key] = schema

    def clear(self) -> None:
        """Drop all cached schemas (frees projection matrices)."""
        self._cache.clear()


def make_estimators(
    cache: SchemaCache, methods: Sequence[str] = ("basic_agms", "skimmed")
) -> dict[str, EstimatorFn]:
    """Build the named estimator adapters over a shared schema cache.

    Known method names: ``"basic_agms"`` (ESTJOINSIZE of [4]),
    ``"skimmed"`` (the paper's ESTSKIMJOINSIZE), ``"fast_agms"``
    (hash sketches without skimming).  All use identical space
    ``width * depth`` counters per stream.
    """
    adapters: dict[str, EstimatorFn] = {}

    def basic_agms(f, g, width, depth, seed):
        schema = cache.agms(width, depth, seed)
        return schema.sketch_of(f).est_join_size(schema.sketch_of(g))

    def skimmed(f, g, width, depth, seed):
        schema = cache.skimmed(width, depth, seed)
        return schema.sketch_of(f).est_join_size(schema.sketch_of(g))

    def fast_agms(f, g, width, depth, seed):
        schema = cache.hash(width, depth, seed)
        return schema.sketch_of(f).est_join_size(schema.sketch_of(g))

    known = {"basic_agms": basic_agms, "skimmed": skimmed, "fast_agms": fast_agms}
    for name in methods:
        if name not in known:
            raise ParameterError(f"unknown method {name!r}; known: {sorted(known)}")
        adapters[name] = known[name]
    return adapters


def run_sweep(
    workload: WorkloadFn,
    estimators: Mapping[str, EstimatorFn],
    config: SweepConfig,
) -> SweepResult:
    """Run the full (shape x trial x method) grid for one workload.

    Trial ``t`` draws its data with seed ``config.seed + t`` (shared by all
    methods and shapes, so comparisons are paired) and sketches it with
    estimator seed ``config.seed`` (fixed randomness, varying data).
    Shapes form the outer loop so a bounded schema cache (one shape hot at
    a time) still avoids all redundant family/projection construction.
    """
    result = SweepResult()
    draws = [workload(config.seed + trial) for trial in range(config.trials)]
    actuals = [f.join_size(g) for f, g in draws]
    for width, depth in config.shapes():
        budget = config.budget_of(width, depth)
        for method, estimator in estimators.items():
            for trial, ((f, g), actual) in enumerate(zip(draws, actuals)):
                estimator_seed = (
                    config.seed + trial if config.vary_estimator_seed else config.seed
                )
                estimate = estimator(f, g, width, depth, estimator_seed)
                result.records.append(
                    TrialRecord(
                        method=method,
                        width=width,
                        depth=depth,
                        space=width * depth,
                        budget=budget,
                        trial=trial,
                        estimate=float(estimate),
                        actual=float(actual),
                        error=join_error(float(estimate), float(actual)),
                    )
                )
    return result
