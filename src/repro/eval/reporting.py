"""Plain-text rendering of experiment results (the "figures" of the repo).

The benchmark harness regenerates every evaluation artifact of the paper
as printed tables/series — the same rows a plot would be drawn from.
These helpers keep the formatting in one place so all benches look alike.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def format_number(value: float) -> str:
    """Compact numeric formatting for table cells."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1e6 or magnitude < 1e-3:
        return f"{value:.3e}"
    if magnitude >= 100:
        return f"{value:.1f}"
    return f"{value:.4f}"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    formatted_rows = [
        [
            cell if isinstance(cell, str) else format_number(cell)
            for cell in row
        ]
        for row in rows
    ]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in formatted_rows))
        if formatted_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in formatted_rows:
        lines.append(" | ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    title: str,
    x_label: str,
    series: Mapping[str, Sequence[tuple[float, float]]],
) -> str:
    """Render several (x, y) series as one table keyed by x.

    ``series`` maps a method/series name to its sorted (x, y) points; x
    values are unioned across series (missing points render blank), which
    matches how the paper's figure-5 plots overlay methods on a shared
    space axis.
    """
    xs = sorted({x for points in series.values() for x, _ in points})
    lookup = {
        name: {x: y for x, y in points} for name, points in series.items()
    }
    headers = [x_label] + list(series)
    rows = []
    for x in xs:
        row: list[object] = [x]
        for name in series:
            value = lookup[name].get(x)
            row.append("" if value is None else value)
        rows.append(row)
    return render_table(headers, rows, title=title)
