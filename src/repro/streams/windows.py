"""Jumping-window synopses: join aggregates over the last ``W`` epochs.

Many of the paper's motivating applications (§1: SNMP polling rounds, CDR
batches) care about *recent* traffic, not the whole stream — the classic
sliding-window setting of Datar et al. [12], which the paper lists as
related work.  Because every sketch in this library is a **linear
projection**, windowing needs no new estimator theory: maintain one
sub-sketch per epoch in a ring of ``window_epochs`` buckets, and the
window synopsis is simply the *sum* of the live epochs' sketches (a
"jumping" window with epoch granularity).  Expiring an epoch is exact —
its sketch is dropped, not approximated — so windowed join estimates have
exactly the accuracy of an ordinary sketch over the window's content.

Space cost is ``window_epochs`` times one sketch, the standard trade for
epoch-granular expiry.

Example::

    schema = WindowedSketchSchema(width=128, depth=7, domain_size=1 << 16,
                                  window_epochs=12, seed=1)
    f, g = schema.create_sketch(), schema.create_sketch()
    ... feed updates; call f.advance_epoch() / g.advance_epoch() on each
        clock tick (both streams must tick together) ...
    estimate = f.est_join_size(g)     # join over the last 12 epochs only
"""

from __future__ import annotations

import numpy as np

from ..errors import IncompatibleSketchError, ParameterError
from ..sketches.base import StreamSynopsis
from ..sketches.hash_sketch import HashSketch, HashSketchSchema


class WindowedSketchSchema:
    """Shared randomness/shape for join-compatible windowed sketches.

    Every epoch's sub-sketch uses the *same* hash/sign families (they
    summarise disjoint substreams of one stream), so the ring collapses to
    a single sketch by counter addition.
    """

    def __init__(
        self,
        width: int,
        depth: int,
        domain_size: int,
        window_epochs: int,
        seed: int = 0,
    ):
        if window_epochs < 1:
            raise ParameterError(f"window_epochs must be >= 1, got {window_epochs}")
        self.window_epochs = window_epochs
        self.inner = HashSketchSchema(width, depth, domain_size, seed=seed)

    @property
    def width(self) -> int:
        """Buckets per table of each epoch sub-sketch."""
        return self.inner.width

    @property
    def depth(self) -> int:
        """Tables per epoch sub-sketch."""
        return self.inner.depth

    @property
    def domain_size(self) -> int:
        """Stream value domain."""
        return self.inner.domain_size

    def create_sketch(self) -> "WindowedSketch":
        """A fresh empty windowed sketch bound to this schema."""
        return WindowedSketch(self)

    def is_compatible(self, other: "WindowedSketchSchema") -> bool:
        """True if sketches from ``other`` may be combined with ours."""
        return (
            self.window_epochs == other.window_epochs
            and self.inner.is_compatible(other.inner)
        )

    def __repr__(self) -> str:
        return (
            f"WindowedSketchSchema(width={self.width}, depth={self.depth}, "
            f"domain_size={self.domain_size}, window_epochs={self.window_epochs})"
        )


class WindowedSketch(StreamSynopsis):
    """Hash sketch over the most recent ``window_epochs`` epochs of a stream."""

    def __init__(self, schema: WindowedSketchSchema):
        self._schema = schema
        self._ring: list[HashSketch] = [schema.inner.create_sketch()]
        self._epochs_seen = 1

    # -- synopsis contract ---------------------------------------------------

    @property
    def schema(self) -> WindowedSketchSchema:
        """The schema (shared randomness and window length) of this sketch."""
        return self._schema

    @property
    def domain_size(self) -> int:
        """Size of the integer value domain this synopsis covers."""
        return self._schema.domain_size

    @property
    def current_epoch(self) -> int:
        """Index of the epoch currently receiving updates (0-based)."""
        return self._epochs_seen - 1

    @property
    def live_epochs(self) -> int:
        """Number of epochs currently contributing to the window."""
        return len(self._ring)

    def update(self, value: int, weight: float = 1.0) -> None:
        self._ring[-1].update(value, weight)

    def update_bulk(self, values: np.ndarray, weights: np.ndarray | None = None) -> None:
        self._ring[-1].update_bulk(values, weights)

    def size_in_counters(self) -> int:
        # The ring always provisions the full window's epochs worth of space.
        return self._schema.window_epochs * (
            self._schema.width * self._schema.depth
        )

    def seed_words(self) -> int:
        return self._schema.inner.create_sketch().seed_words()

    # -- window control -------------------------------------------------------

    def advance_epoch(self) -> None:
        """Close the current epoch and start a new one.

        If the ring is full, the oldest epoch's sub-sketch is dropped —
        its contribution leaves the window *exactly* (no decay error).
        """
        self._ring.append(self._schema.inner.create_sketch())
        if len(self._ring) > self._schema.window_epochs:
            self._ring.pop(0)
        self._epochs_seen += 1

    def window_sketch(self) -> HashSketch:
        """The live window collapsed into a single ordinary hash sketch.

        All epoch sub-sketches share one schema, so their counter-wise sum
        is the sketch of the concatenated window content; every ordinary
        estimator (point, join, self-join, skim) applies to the result.
        """
        collapsed = self._ring[0].copy()
        for epoch_sketch in self._ring[1:]:
            collapsed = collapsed.merged_with(epoch_sketch)
        return collapsed

    # -- estimation -------------------------------------------------------------

    def est_join_size(self, other: "WindowedSketch") -> float:
        """Estimated ``COUNT(F_window join G_window)``.

        Both windows must be aligned (same number of epoch advances); an
        estimate across misaligned windows would silently compare
        different time ranges, so it is rejected.
        """
        self._check_compatible(other)
        return self.window_sketch().est_join_size(other.window_sketch())

    def est_self_join_size(self) -> float:
        """Estimated second moment of the window's content."""
        return self.window_sketch().est_self_join_size()

    def point_estimate(self, value: int) -> float:
        """Estimated frequency of ``value`` within the window."""
        return self.window_sketch().point_estimate(value)

    def _check_compatible(self, other: "WindowedSketch") -> None:
        if not isinstance(other, WindowedSketch):
            raise IncompatibleSketchError(
                f"cannot combine WindowedSketch with {type(other).__name__}"
            )
        if other._schema is not self._schema and not self._schema.is_compatible(
            other._schema
        ):
            raise IncompatibleSketchError(
                "windowed sketches come from different schemas"
            )
        if other._epochs_seen != self._epochs_seen:
            raise IncompatibleSketchError(
                f"window misalignment: {self._epochs_seen} vs "
                f"{other._epochs_seen} epochs seen — advance both streams' "
                "epochs together"
            )

    def __repr__(self) -> str:
        return (
            f"WindowedSketch(width={self._schema.width}, "
            f"depth={self._schema.depth}, "
            f"epochs={self.live_epochs}/{self._schema.window_epochs})"
        )
