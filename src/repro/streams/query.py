"""Stream query model: ``AGG(F join G)`` with selection predicates (§2.1).

The paper's query class is ``AGG(F join G)`` where AGG is COUNT, SUM or
AVERAGE; SUM reduces to COUNT over a measure-weighted stream, AVERAGE is
SUM/COUNT, and "selection predicates can easily be incorporated ... we
simply drop from the streams elements that do not satisfy the predicates
(prior to updating the synopses)".  This module gives those queries a
small, typed AST that :class:`~repro.streams.engine.StreamEngine`
evaluates against its registered synopses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet

from ..errors import QueryError


class Predicate:
    """A selection predicate applied to stream values before sketching."""

    def accepts(self, value: int) -> bool:
        """True if elements with this value pass the selection."""
        raise NotImplementedError


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """Accepts everything (the default, no selection)."""

    def accepts(self, value: int) -> bool:
        return True


@dataclass(frozen=True)
class RangePredicate(Predicate):
    """Accepts values in the half-open interval ``[low, high)``."""

    low: int
    high: int

    def __post_init__(self) -> None:
        if self.low >= self.high:
            raise QueryError(f"empty range predicate [{self.low}, {self.high})")

    def accepts(self, value: int) -> bool:
        return self.low <= value < self.high


@dataclass(frozen=True)
class InSetPredicate(Predicate):
    """Accepts values from an explicit set."""

    values: FrozenSet[int]

    def accepts(self, value: int) -> bool:
        return value in self.values


@dataclass(frozen=True)
class FunctionPredicate(Predicate):
    """Accepts values for which ``function(value)`` is truthy."""

    function: Callable[[int], bool]

    def accepts(self, value: int) -> bool:
        return bool(self.function(value))


class Query:
    """Marker base class for queries the stream engine answers."""


@dataclass(frozen=True)
class JoinCountQuery(Query):
    """``COUNT(left join right)`` — the paper's headline query."""

    left: str
    right: str


@dataclass(frozen=True)
class JoinSumQuery(Query):
    """``SUM_measure(left join right)``.

    ``measure_stream`` names a registered *weighted* stream carrying the
    same values as ``left`` but with each element's measure as its update
    weight; the paper's reduction makes the answer
    ``<measure-weighted left, right>``.
    """

    left: str
    right: str
    measure_stream: str


@dataclass(frozen=True)
class JoinAverageQuery(Query):
    """``AVERAGE_measure(left join right)`` = JoinSum / JoinCount."""

    left: str
    right: str
    measure_stream: str


@dataclass(frozen=True)
class SelfJoinQuery(Query):
    """``COUNT(stream join stream)`` — the second moment F2 (§2.2)."""

    stream: str


@dataclass(frozen=True)
class PointQuery(Query):
    """Estimated frequency of one domain value in a stream."""

    stream: str
    value: int


@dataclass(frozen=True)
class MultiJoinCountQuery(Query):
    """``COUNT(R1 join R2 join ... join Rk)`` over registered relations.

    Relations are multi-attribute streams registered through
    :meth:`~repro.streams.engine.StreamEngine.register_relation`; every
    join attribute must appear in exactly two of the named relations.
    """

    relations: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.relations) < 2:
            raise QueryError("a multi-join needs at least two relations")
