"""Stream query model: ``AGG(F join G)`` with selection predicates (§2.1).

The paper's query class is ``AGG(F join G)`` where AGG is COUNT, SUM or
AVERAGE; SUM reduces to COUNT over a measure-weighted stream, AVERAGE is
SUM/COUNT, and "selection predicates can easily be incorporated ... we
simply drop from the streams elements that do not satisfy the predicates
(prior to updating the synopses)".  This module gives those queries a
small, typed AST that :class:`~repro.streams.engine.StreamEngine`
evaluates against its registered synopses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, FrozenSet

from ..errors import QueryError

if TYPE_CHECKING:  # numpy is only needed once bulk ingestion happens
    import numpy as np


class Predicate:
    """A selection predicate applied to stream values before sketching."""

    def accepts(self, value: int) -> bool:
        """True if elements with this value pass the selection."""
        raise NotImplementedError

    def accepts_bulk(self, values: "np.ndarray") -> "np.ndarray":
        """Boolean keep-mask for a whole batch of values.

        The bulk-ingest hot path: subclasses with array semantics
        (range, set, modulo) override this with a vectorised mask; this
        base implementation is the ``np.fromiter`` fallback that calls
        :meth:`accepts` per element, for opaque predicates.
        """
        import numpy as np

        return np.fromiter(
            (self.accepts(int(v)) for v in values), dtype=bool, count=values.size
        )


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """Accepts everything (the default, no selection)."""

    def accepts(self, value: int) -> bool:
        return True

    def accepts_bulk(self, values: "np.ndarray") -> "np.ndarray":
        """All-ones mask (no per-element work)."""
        import numpy as np

        return np.ones(values.size, dtype=bool)


@dataclass(frozen=True)
class RangePredicate(Predicate):
    """Accepts values in the half-open interval ``[low, high)``."""

    low: int
    high: int

    def __post_init__(self) -> None:
        if self.low >= self.high:
            raise QueryError(f"empty range predicate [{self.low}, {self.high})")

    def accepts(self, value: int) -> bool:
        return self.low <= value < self.high

    def accepts_bulk(self, values: "np.ndarray") -> "np.ndarray":
        """Vectorised interval test."""
        return (values >= self.low) & (values < self.high)


@dataclass(frozen=True)
class InSetPredicate(Predicate):
    """Accepts values from an explicit set."""

    values: FrozenSet[int]

    def accepts(self, value: int) -> bool:
        return value in self.values

    def accepts_bulk(self, values: "np.ndarray") -> "np.ndarray":
        """Vectorised membership test (``np.isin`` over the frozen set)."""
        import numpy as np

        members = np.fromiter(self.values, dtype=np.int64, count=len(self.values))
        return np.isin(values, members)


@dataclass(frozen=True)
class ModuloPredicate(Predicate):
    """Accepts values congruent to ``remainder`` modulo ``modulus``.

    The classic hash-partition selection (e.g. "every 4th key"); included
    because it vectorises trivially and shows up in stream-sampling
    pipelines.
    """

    modulus: int
    remainder: int

    def __post_init__(self) -> None:
        if self.modulus < 1:
            raise QueryError(f"modulus must be >= 1, got {self.modulus}")
        if not 0 <= self.remainder < self.modulus:
            raise QueryError(
                f"remainder must be in [0, {self.modulus}), got {self.remainder}"
            )

    def accepts(self, value: int) -> bool:
        return value % self.modulus == self.remainder

    def accepts_bulk(self, values: "np.ndarray") -> "np.ndarray":
        """Vectorised congruence test."""
        return (values % self.modulus) == self.remainder


@dataclass(frozen=True)
class FunctionPredicate(Predicate):
    """Accepts values for which ``function(value)`` is truthy.

    Opaque to vectorisation: bulk ingestion falls back to the
    per-element :meth:`Predicate.accepts_bulk` loop.
    """

    function: Callable[[int], bool]

    def accepts(self, value: int) -> bool:
        return bool(self.function(value))


class Query:
    """Marker base class for queries the stream engine answers."""


@dataclass(frozen=True)
class JoinCountQuery(Query):
    """``COUNT(left join right)`` — the paper's headline query."""

    left: str
    right: str


@dataclass(frozen=True)
class JoinSumQuery(Query):
    """``SUM_measure(left join right)``.

    ``measure_stream`` names a registered *weighted* stream carrying the
    same values as ``left`` but with each element's measure as its update
    weight; the paper's reduction makes the answer
    ``<measure-weighted left, right>``.
    """

    left: str
    right: str
    measure_stream: str


@dataclass(frozen=True)
class JoinAverageQuery(Query):
    """``AVERAGE_measure(left join right)`` = JoinSum / JoinCount."""

    left: str
    right: str
    measure_stream: str


@dataclass(frozen=True)
class SelfJoinQuery(Query):
    """``COUNT(stream join stream)`` — the second moment F2 (§2.2)."""

    stream: str


@dataclass(frozen=True)
class PointQuery(Query):
    """Estimated frequency of one domain value in a stream."""

    stream: str
    value: int


@dataclass(frozen=True)
class MultiJoinCountQuery(Query):
    """``COUNT(R1 join R2 join ... join Rk)`` over registered relations.

    Relations are multi-attribute streams registered through
    :meth:`~repro.streams.engine.StreamEngine.register_relation`; every
    join attribute must appear in exactly two of the named relations.
    """

    relations: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.relations) < 2:
            raise QueryError("a multi-join needs at least two relations")
