"""Workload generators for the paper's experimental data sets (Section 5.1).

Synthetic experiments join a **Zipfian** stream with a **right-shifted
Zipfian** stream over a domain of 256K values; the shift parameter is the
paper's "knob" controlling the join size (shift 0 makes the join a
self-join; larger shifts progressively de-align the heavy values of the
two streams and shrink the join).  The real-life experiment joins two
Census attributes (weekly wage vs. weekly wage overtime, domain 2**16,
159,434 records); the CPS file is not redistributable, so
:func:`census_like_pair` synthesises a pair of streams with the documented
shape (see DESIGN.md, Substitutions).

All generators are deterministic given their seed/rng and produce
:class:`~repro.streams.model.FrequencyVector` ground truth; element-level
streams (optionally with transient insert/delete churn) can be
materialised from any frequency vector.
"""

from __future__ import annotations

import numpy as np

from .model import FrequencyVector, Update, iter_stream
from ..errors import ParameterError


def zipf_probabilities(domain_size: int, z: float) -> np.ndarray:
    """Zipf(z) probability mass over ranks ``1..domain_size``.

    ``pmf[r-1] = (1 / r**z) / H`` where ``H`` normalises.  ``z = 0`` is the
    uniform distribution.  Domain value ``v`` is assigned rank ``v + 1``
    (value 0 is the most frequent).
    """
    if domain_size < 1:
        raise ParameterError(f"domain_size must be >= 1, got {domain_size}")
    if z < 0:
        raise ParameterError(f"zipf parameter must be non-negative, got {z}")
    ranks = np.arange(1, domain_size + 1, dtype=np.float64)
    weights = ranks**-z
    return weights / weights.sum()


def zipf_frequencies(
    domain_size: int,
    total: int,
    z: float,
    rng: np.random.Generator | None = None,
) -> FrequencyVector:
    """A Zipf(z) stream of ``total`` elements as a frequency vector.

    With an ``rng``, counts are a multinomial draw (what sampling ``total``
    i.i.d. elements produces — each trial differs, as in the paper's
    repeated runs); without one, counts are the rounded expectations
    (deterministic, exactly reproducible shape).
    """
    if total < 0:
        raise ParameterError(f"total must be non-negative, got {total}")
    pmf = zipf_probabilities(domain_size, z)
    if rng is None:
        counts = np.floor(pmf * total)
        # Distribute the rounding shortfall over the heaviest ranks so the
        # stream has exactly `total` elements.
        shortfall = int(total - counts.sum())
        counts[:shortfall] += 1
    else:
        counts = rng.multinomial(total, pmf).astype(np.float64)
    return FrequencyVector(counts)


def shifted_frequencies(frequencies: FrequencyVector, shift: int) -> FrequencyVector:
    """Right-shift a frequency vector by ``shift`` positions (cyclically).

    This is the paper's "right-shifted Zipfian": the frequency of domain
    value ``v + shift`` in the result equals the frequency of ``v`` in the
    input, so the result has the same frequency *distribution* but its
    heavy values are de-aligned from the input's by ``shift``.  The shift
    wraps cyclically, preserving the stream size exactly.
    """
    if shift < 0:
        raise ParameterError(f"shift must be non-negative, got {shift}")
    return FrequencyVector(np.roll(frequencies.counts, shift))


def shifted_zipf_pair(
    domain_size: int,
    total: int,
    z: float,
    shift: int,
    rng: np.random.Generator | None = None,
) -> tuple[FrequencyVector, FrequencyVector]:
    """The paper's synthetic workload: (Zipf(z), right-shifted Zipf(z)).

    With an ``rng``, the two streams are *independent* multinomial draws
    from their respective distributions.
    """
    f = zipf_frequencies(domain_size, total, z, rng)
    if rng is None:
        g = shifted_frequencies(f, shift)
    else:
        g = shifted_frequencies(zipf_frequencies(domain_size, total, z, rng), shift)
    return f, g


def uniform_frequencies(
    domain_size: int,
    total: int,
    rng: np.random.Generator | None = None,
) -> FrequencyVector:
    """A uniform stream of ``total`` elements (Zipf with ``z = 0``)."""
    return zipf_frequencies(domain_size, total, 0.0, rng)


def census_like_pair(
    num_records: int = 159_434,
    domain_size: int = 1 << 16,
    seed: int = 0,
) -> tuple[FrequencyVector, FrequencyVector]:
    """Synthetic stand-in for the paper's Census CPS experiment.

    Produces per-record pairs (weekly wage, weekly wage overtime) over
    ``[0, domain_size)`` with the documented shape:

    * wages: a log-normal body (median a few hundred dollars/week) with
      ~45% of records on salaried round numbers (multiples of $50 — the
      spikes that make real wage data skewed), a small zero mass, clipped
      to the domain;
    * overtime: zero for most records; otherwise a correlated fraction of
      the record's wage, quantised to $5 steps (several dense values, not
      one degenerate spike).

    Returns the two attribute streams as frequency vectors; the join of
    the two attributes (wage value = overtime value) matches records whose
    overtime pay equals some other record's wage, exactly the query shape
    of the paper's experiment.
    """
    if num_records < 1:
        raise ParameterError(f"num_records must be >= 1, got {num_records}")
    rng = np.random.default_rng(seed)

    wages = rng.lognormal(mean=np.log(600.0), sigma=0.8, size=num_records)
    salaried = rng.random(num_records) < 0.45
    wages = np.where(salaried, np.round(wages / 50.0) * 50.0, np.round(wages))
    wages = np.clip(wages, 0, domain_size - 1).astype(np.int64)
    wages[rng.random(num_records) < 0.03] = 0

    overtime_share = rng.random(num_records) < 0.35
    fractions = rng.uniform(0.05, 0.5, size=num_records)
    overtime = np.where(
        overtime_share, np.round(wages * fractions / 5.0) * 5.0, 0.0
    )
    overtime = np.clip(overtime, 0, domain_size - 1).astype(np.int64)

    wage_stream = FrequencyVector.from_values(wages, domain_size)
    overtime_stream = FrequencyVector.from_values(overtime, domain_size)
    return wage_stream, overtime_stream


def element_stream(
    frequencies: FrequencyVector,
    rng: np.random.Generator | None = None,
) -> list[Update]:
    """The frequency vector as a shuffled list of unit-weight updates."""
    return list(iter_stream(frequencies, rng))


def insert_delete_stream(
    frequencies: FrequencyVector,
    churn_fraction: float,
    rng: np.random.Generator,
) -> list[Update]:
    """An update stream with transient churn whose *net* state is ``frequencies``.

    In addition to the inserts realising the target vector, a further
    ``churn_fraction * N`` random values are inserted and later deleted
    (each transient value appears as one ``+1`` and one ``-1`` update, with
    the delete always after its insert).  Feeding this stream to any linear
    synopsis must leave it in exactly the state the plain insert stream
    would — the E8 delete experiment and tests rely on this.
    """
    if churn_fraction < 0:
        raise ParameterError(f"churn_fraction must be non-negative, got {churn_fraction}")
    base = element_stream(frequencies, rng)
    num_churn = int(round(churn_fraction * frequencies.absolute_mass()))
    if num_churn == 0:
        return base
    churn_values = rng.integers(0, frequencies.domain_size, size=num_churn)

    # Lay the stream out slot by slot: sample 2 slots per churn pair, sort
    # them, and use the earlier for the insert and the later for the delete
    # (a delete must follow its insert); base updates fill the rest in
    # order.  This is O(n log n), unlike repeated list insertion.
    total = len(base) + 2 * num_churn
    churn_slots = np.sort(rng.choice(total, size=2 * num_churn, replace=False))
    stream: list[Update | None] = [None] * total
    for pair, value in enumerate(churn_values):
        stream[churn_slots[2 * pair]] = Update(int(value), 1.0)
        stream[churn_slots[2 * pair + 1]] = Update(int(value), -1.0)
    base_iter = iter(base)
    for slot in range(total):
        if stream[slot] is None:
            stream[slot] = next(base_iter)
    return stream  # type: ignore[return-value]
