"""Multi-join COUNT estimation by sketch composition (Dobra et al. [5]).

The paper notes (§1, §2.1) that its techniques "can readily be extended to
multi-join queries, as in [5]".  This module implements that extension's
substrate: per-relation atomic sketches over *several* attributes, where a
tuple's contribution is its weight times the **product** of one ±1 sign
variable per join attribute, with each join attribute's sign family shared
by exactly the two relations it joins.  For an acyclic equi-join query

    COUNT(R1 join R2 join ... join Rk)

the expectation of the product of corresponding atomic sketches telescopes
to the exact join count (all cross terms vanish by the independence of the
sign families), and averaging/median boosting works exactly as in the
binary case.

Example (3-way chain)::

    schema = MultiJoinSchema(averaging=64, median=11,
                             attribute_domains={"a": 1024, "b": 1024})
    r1 = schema.create_relation(("a",))        # F(a)
    r2 = schema.create_relation(("a", "b"))    # G(a, b)
    r3 = schema.create_relation(("b",))        # H(b)
    ... feed tuples ...
    estimate = est_multi_join_count([r1, r2, r3])
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

import numpy as np

from ..errors import DomainError, IncompatibleSketchError, ParameterError, QueryError
from ..hashing import FourWiseSignFamily

#: Cap on the (families x tuples) sign matrix materialised per bulk chunk.
_BULK_CHUNK_ELEMENTS = 8_000_000


class MultiJoinSchema:
    """Shared sign families for a set of relations joined on named attributes.

    Parameters
    ----------
    averaging, median:
        Boosting grid, as in basic AGMS (variance / confidence).
    attribute_domains:
        Domain size per join-attribute name; every relation's values for an
        attribute must fall in ``[0, domain)``.
    seed:
        Base seed; each attribute gets an independent family.
    """

    def __init__(
        self,
        averaging: int,
        median: int,
        attribute_domains: dict[str, int],
        seed: int = 0,
    ):
        if averaging < 1:
            raise ParameterError(f"averaging must be >= 1, got {averaging}")
        if median < 1:
            raise ParameterError(f"median must be >= 1, got {median}")
        if not attribute_domains:
            raise ParameterError("at least one join attribute is required")
        for name, domain in attribute_domains.items():
            if domain < 1:
                raise ParameterError(f"attribute {name!r} has invalid domain {domain}")
        self.averaging = averaging
        self.median = median
        self.attribute_domains = dict(attribute_domains)
        self.seed = seed
        children = np.random.SeedSequence(seed).spawn(len(attribute_domains))
        self.sign_families = {
            name: FourWiseSignFamily(
                averaging * median, np.random.default_rng(child)
            )
            for name, child in zip(sorted(attribute_domains), children)
        }

    def create_relation(self, attributes: Sequence[str]) -> "RelationSketch":
        """An empty sketch for a relation with the given join attributes."""
        return RelationSketch(self, tuple(attributes))

    def __repr__(self) -> str:
        return (
            f"MultiJoinSchema(averaging={self.averaging}, median={self.median}, "
            f"attributes={sorted(self.attribute_domains)})"
        )


class RelationSketch:
    """Atomic-sketch array for one relation of a multi-join query.

    Atomic sketch ``(j, i)`` holds
    ``sum_t w(t) * prod_{attr} xi^attr_{j,i}(t[attr])`` over the relation's
    tuple stream; supports inserts and deletes like every linear sketch.
    """

    def __init__(self, schema: MultiJoinSchema, attributes: tuple[str, ...]):
        if not attributes:
            raise ParameterError("a relation needs at least one join attribute")
        unknown = [a for a in attributes if a not in schema.attribute_domains]
        if unknown:
            raise QueryError(f"unknown join attributes {unknown}")
        if len(set(attributes)) != len(attributes):
            raise QueryError(f"duplicate join attributes in {attributes}")
        self._schema = schema
        self.attributes = attributes
        self._atomic = np.zeros((schema.median, schema.averaging))
        self._absolute_mass = 0.0

    @property
    def schema(self) -> MultiJoinSchema:
        """The multi-join schema this relation sketch belongs to."""
        return self._schema

    @property
    def atomic_sketches(self) -> np.ndarray:
        """Read-only ``(median, averaging)`` atomic sketch array."""
        view = self._atomic.view()
        view.flags.writeable = False
        return view

    @property
    def absolute_mass(self) -> float:
        """Sum of ``|weight|`` over processed tuples."""
        return self._absolute_mass

    def update(self, values: Sequence[int], weight: float = 1.0) -> None:
        """Process one relation tuple (its join-attribute values, in order)."""
        self.update_bulk(np.asarray([values], dtype=np.int64), np.asarray([weight]))

    def update_bulk(
        self, tuples: np.ndarray, weights: np.ndarray | None = None
    ) -> None:
        """Process a batch of tuples, shape ``(m, len(attributes))``."""
        tuples = np.asarray(tuples, dtype=np.int64)
        if tuples.ndim != 2 or tuples.shape[1] != len(self.attributes):
            raise ParameterError(
                f"tuples must have shape (m, {len(self.attributes)}), "
                f"got {tuples.shape}"
            )
        if tuples.shape[0] == 0:
            return
        self._check_domains(tuples)
        if weights is None:
            weights = np.ones(tuples.shape[0])
        else:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != (tuples.shape[0],):
                raise ParameterError("weights must have shape (m,)")
        flat = self._atomic.reshape(-1)
        num_families = self._schema.averaging * self._schema.median
        chunk = max(1, _BULK_CHUNK_ELEMENTS // num_families)
        for start in range(0, tuples.shape[0], chunk):
            stop = start + chunk
            sign_product = np.ones((num_families, min(stop, tuples.shape[0]) - start))
            for column, attribute in enumerate(self.attributes):
                family = self._schema.sign_families[attribute]
                sign_product *= family.signs(tuples[start:stop, column])
            flat += sign_product @ weights[start:stop]
        self._absolute_mass += float(np.abs(weights).sum())

    def size_in_counters(self) -> int:
        """Synopsis size in counter words."""
        return int(self._atomic.size)

    def _check_domains(self, tuples: np.ndarray) -> None:
        for column, attribute in enumerate(self.attributes):
            domain = self._schema.attribute_domains[attribute]
            column_values = tuples[:, column]
            if column_values.min() < 0 or column_values.max() >= domain:
                raise DomainError(
                    f"attribute {attribute!r} values outside [0, {domain})"
                )

    def __repr__(self) -> str:
        return (
            f"RelationSketch(attributes={self.attributes}, "
            f"N={self._absolute_mass:g})"
        )


def validate_join_graph(relations: Sequence[RelationSketch]) -> None:
    """Check the relations form a valid (acyclic-style) equi-join query.

    Requirements for the product estimator to be unbiased: all relations
    share one schema, and every join attribute occurs in **exactly two**
    relations (so each sign variable appears squared in the expectation).
    """
    if len(relations) < 2:
        raise QueryError("a multi-join needs at least two relations")
    schema = relations[0].schema
    for relation in relations[1:]:
        if relation.schema is not schema:
            raise IncompatibleSketchError(
                "all relations must be created from the same MultiJoinSchema"
            )
    occurrences = Counter(
        attribute for relation in relations for attribute in relation.attributes
    )
    bad = {a: n for a, n in occurrences.items() if n != 2}
    if bad:
        raise QueryError(
            f"each join attribute must occur in exactly two relations; got {bad}"
        )


def est_multi_join_count(relations: Sequence[RelationSketch]) -> float:
    """Estimate ``COUNT(R1 join ... join Rk)`` from the relation sketches.

    Per boosting cell, multiply the corresponding atomic sketches of every
    relation; average within median groups; median across groups.
    """
    validate_join_graph(relations)
    product = relations[0].atomic_sketches.copy()
    for relation in relations[1:]:
        product *= relation.atomic_sketches
    return float(np.median(np.mean(product, axis=1)))
