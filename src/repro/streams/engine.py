"""Stream query-processing engine (paper Figure 1).

The engine is the architectural shell around the synopses: it owns one
schema (so every registered stream's sketch is join-compatible), applies
per-stream selection predicates *before* synopsis maintenance ("we simply
drop from the streams elements that do not satisfy the predicates"), and
answers the §2.1 query class — COUNT/SUM/AVERAGE over binary joins,
self-joins and point frequencies — from synopses alone, never from the raw
streams (which, per the stream model, can only be seen once).

Synopsis choice is pluggable: ``"skimmed"`` (the paper's algorithm,
default), ``"agms"`` (the basic-sketching baseline) or ``"hash"``
(unskimmed hash sketches, i.e. Fast-AGMS) — useful for side-by-side
comparisons through one interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from contextlib import nullcontext
from typing import TYPE_CHECKING, Iterable

import numpy as np

from ..errors import ParameterError, QueryError
from ..monitor import AUDIT as _AUDIT
from ..monitor.shadow import ShadowAuditor
from ..obs import METRICS as _METRICS
from ..profile import PROFILER as _PROFILER, RECORDER as _RECORDER
from ..trace import TRACER as _TRACER
from ..sketches.agms import AGMSSchema, AGMSSketch
from ..sketches.hash_sketch import HashSketch, HashSketchSchema
from ..streams.model import Update
from .multijoin import MultiJoinSchema, RelationSketch, est_multi_join_count
from .query import (
    JoinAverageQuery,
    JoinCountQuery,
    JoinSumQuery,
    MultiJoinCountQuery,
    PointQuery,
    Predicate,
    Query,
    SelfJoinQuery,
    TruePredicate,
)

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from ..core.config import SketchParameters
    from ..core.estimator import SkimmedSketch

#: Synopsis kinds the engine can maintain.
SYNOPSIS_KINDS = ("skimmed", "agms", "hash")


@dataclass
class _RegisteredStream:
    """Book-keeping for one registered stream."""

    name: str
    predicate: Predicate
    synopsis: "SkimmedSketch | AGMSSketch | HashSketch"
    elements_seen: int = 0
    elements_dropped: int = 0


class StreamEngine:
    """One-pass query engine over named update streams.

    Parameters
    ----------
    domain_size:
        Common value domain of all streams.
    parameters:
        Sketch dimensions (width/depth or averaging/median, depending on
        the synopsis kind) — see :class:`~repro.core.config.SketchParameters`.
    synopsis:
        ``"skimmed"`` | ``"agms"`` | ``"hash"``.
    seed:
        Seed shared by all synopses (required for join compatibility).
    """

    def __init__(
        self,
        domain_size: int,
        parameters: "SketchParameters",
        synopsis: str = "skimmed",
        seed: int = 0,
        attribute_domains: dict[str, int] | None = None,
    ):
        # Imported here (not at module top) because repro.core depends on
        # repro.streams.model; a top-level import would close the cycle.
        from ..core.estimator import SkimmedSketchSchema

        if synopsis not in SYNOPSIS_KINDS:
            raise ParameterError(
                f"synopsis must be one of {SYNOPSIS_KINDS}, got {synopsis!r}"
            )
        self.domain_size = domain_size
        self.parameters = parameters
        self.synopsis_kind = synopsis
        self.seed = seed
        self._shadow: ShadowAuditor | None = None
        self._streams: dict[str, _RegisteredStream] = {}
        self._relations: dict[str, RelationSketch] = {}
        # Multi-join relations (§2.1 extension, per Dobra et al. [5]) are
        # opt-in: pass the join attributes' domains to enable them.
        self._multijoin_schema = (
            MultiJoinSchema(
                parameters.width, parameters.depth, attribute_domains, seed=seed
            )
            if attribute_domains
            else None
        )
        if synopsis == "skimmed":
            self._schema = SkimmedSketchSchema(
                parameters.width,
                parameters.depth,
                domain_size,
                seed=seed,
                threshold_multiplier=parameters.threshold_multiplier,
            )
        elif synopsis == "hash":
            self._schema = HashSketchSchema(
                parameters.width, parameters.depth, domain_size, seed=seed
            )
        else:
            averaging, median = parameters.basic_agms_equivalent()
            self._schema = AGMSSchema(averaging, median, domain_size, seed=seed)

    # -- stream registration & maintenance -------------------------------------

    def register_stream(self, name: str, predicate: Predicate | None = None) -> None:
        """Declare a stream; elements failing ``predicate`` are dropped."""
        if name in self._streams:
            raise QueryError(f"stream {name!r} already registered")
        self._streams[name] = _RegisteredStream(
            name=name,
            predicate=predicate if predicate is not None else TruePredicate(),
            synopsis=self._schema.create_sketch(),
        )

    def streams(self) -> list[str]:
        """Names of all registered streams."""
        return list(self._streams)

    def attach_shadow(self, auditor: ShadowAuditor | None) -> None:
        """Attach (or detach, with ``None``) a shadow-exact drift auditor.

        While ``repro.monitor.AUDIT`` is enabled, every ingested element
        is also folded into the auditor's exact sampled frequencies, and
        every audited join query gets a realized-error verdict (plus a
        :class:`~repro.monitor.shadow.DriftAlert` when a rolling window's
        CI coverage drops below the auditor's target).  Attach it before
        elements flow — values ingested earlier are invisible to it.
        """
        self._shadow = auditor

    def register_relation(self, name: str, attributes: tuple[str, ...]) -> None:
        """Declare a multi-attribute relation for multi-join queries.

        Requires the engine to have been constructed with
        ``attribute_domains``; tuples are fed via :meth:`process_tuple`.
        """
        if self._multijoin_schema is None:
            raise QueryError(
                "multi-join support is off: construct the engine with "
                "attribute_domains to enable register_relation"
            )
        if name in self._relations or name in self._streams:
            raise QueryError(f"name {name!r} already registered")
        self._relations[name] = self._multijoin_schema.create_relation(attributes)

    def process_tuple(self, relation: str, values, weight: float = 1.0) -> None:
        """Feed one relation tuple (join-attribute values, in declared order)."""
        self._lookup_relation(relation).update(values, weight)

    def process(self, stream: str, value: int, weight: float = 1.0) -> None:
        """Feed one stream element through predicate filtering into the synopsis."""
        registered = self._lookup(stream)
        registered.elements_seen += 1
        if not registered.predicate.accepts(value):
            registered.elements_dropped += 1
            if _METRICS.enabled:
                _METRICS.count("engine.elements.seen")
                _METRICS.count("engine.elements.dropped")
            return
        if _PROFILER.enabled:
            _PROFILER.mark("engine.ingest")
        with _TRACER.span(
            "engine.ingest", stream=stream, elements=1
        ) if _TRACER.enabled else nullcontext():
            self._ingest_one(registered, value, weight)
        if _AUDIT.enabled and self._shadow is not None:
            self._shadow.observe(stream, value, weight)
        if _METRICS.enabled:
            _METRICS.count("engine.elements.seen")
            _METRICS.count(f"engine.stream.{stream}.elements")
        if _RECORDER.enabled:
            _RECORDER.pulse("ingest.elements")

    def process_many(
        self, stream: str, updates: Iterable[Update], chunk_size: int = 4096
    ) -> None:
        """Feed a finite update stream, chunked onto the bulk path.

        Updates are buffered into arrays of up to ``chunk_size`` elements
        and ingested via :meth:`process_bulk`, so ``Update``-object
        streams get the vectorised predicate + fused-kernel path instead
        of per-element :meth:`process` calls.  Note the coarser failure
        granularity: an out-of-domain value aborts its whole chunk rather
        than just the elements after it.
        """
        if chunk_size < 1:
            raise ParameterError(f"chunk_size must be >= 1, got {chunk_size}")
        values: list[int] = []
        weights: list[float] = []
        for item in updates:
            values.append(item.value)
            weights.append(item.weight)
            if len(values) >= chunk_size:
                self.process_bulk(
                    stream,
                    np.asarray(values, dtype=np.int64),
                    np.asarray(weights, dtype=np.float64),
                )
                values.clear()
                weights.clear()
        if values:
            self.process_bulk(
                stream,
                np.asarray(values, dtype=np.int64),
                np.asarray(weights, dtype=np.float64),
            )

    def process_bulk(
        self, stream: str, values: np.ndarray, weights: np.ndarray | None = None
    ) -> None:
        """Vectorised batch ingestion (predicate applied per element)."""
        registered = self._lookup(stream)
        values = np.asarray(values, dtype=np.int64)
        registered.elements_seen += int(values.size)
        keep = registered.predicate.accepts_bulk(values)
        kept = int(keep.sum())
        registered.elements_dropped += int(values.size - kept)
        if _METRICS.enabled:
            _METRICS.count("engine.elements.seen", int(values.size))
            _METRICS.count("engine.elements.dropped", int(values.size - kept))
            _METRICS.count(f"engine.stream.{stream}.elements", kept)
        if not kept:
            return
        if _PROFILER.enabled:
            _PROFILER.mark("engine.ingest")
        if _RECORDER.enabled:
            _RECORDER.pulse("ingest.elements", kept)
        if kept == values.size:
            kept_values = values
            kept_weights = None if weights is None else np.asarray(weights)
        else:
            kept_values = values[keep]
            kept_weights = None if weights is None else np.asarray(weights)[keep]
        with _TRACER.span(
            "engine.ingest",
            stream=stream,
            elements=int(values.size),
            kept=kept,
        ) if _TRACER.enabled else nullcontext():
            self._ingest_bulk(registered, kept_values, kept_weights)
        if _AUDIT.enabled and self._shadow is not None:
            self._shadow.observe_bulk(
                stream,
                kept_values.tolist(),
                None if kept_weights is None else kept_weights.tolist(),
            )

    # -- ingestion hooks (override points for parallel engines) -----------------

    def _ingest_one(
        self, registered: _RegisteredStream, value: int, weight: float
    ) -> None:
        """Fold one filtered element into the stream's synopsis."""
        registered.synopsis.update(value, weight)

    def _ingest_bulk(
        self,
        registered: _RegisteredStream,
        values: np.ndarray,
        weights: np.ndarray | None,
    ) -> None:
        """Fold a filtered batch into the stream's synopsis.

        :class:`~repro.parallel.ParallelStreamEngine` overrides this (and
        :meth:`_ingest_one`) to route batches through sharded workers;
        everything else — predicates, metrics, tracing, shadow audits,
        query answering — is inherited unchanged.
        """
        registered.synopsis.update_bulk(values, weights)

    def stream_stats(self, stream: str) -> tuple[int, int]:
        """``(elements_seen, elements_dropped_by_predicate)`` for a stream."""
        registered = self._lookup(stream)
        return registered.elements_seen, registered.elements_dropped

    def synopsis_for(self, stream: str):
        """Direct access to a stream's synopsis (for advanced queries)."""
        return self._lookup(stream).synopsis

    def total_space_in_counters(self) -> int:
        """Total synopsis space across all registered streams."""
        return sum(r.synopsis.size_in_counters() for r in self._streams.values())

    # -- SQL front-end -----------------------------------------------------------

    def prepare_sql(self, text: str):
        """Parse a SQL-subset query and register its streams/predicates.

        Streams named by the query that are not yet registered are created,
        carrying the predicates its ``WHERE`` clause implies (selection
        happens at ingestion time, per §2.1, so this must run before
        elements flow).  A ``WHERE`` condition on an *already registered*
        stream is rejected — the elements already ingested cannot be
        retroactively filtered.  Returns the :class:`ParsedQuery`; feed
        data, then ``answer(parsed.query)``.
        """
        from .sql import parse_query

        parsed = parse_query(text)
        for name, predicate in parsed.predicates.items():
            if name in self._streams:
                raise QueryError(
                    f"stream {name!r} is already registered; WHERE predicates "
                    "must be installed before any elements are ingested"
                )
            self.register_stream(name, predicate=predicate)
        for name in self._streams_named_by(parsed.query):
            if name not in self._streams and name not in self._relations:
                self.register_stream(name)
        return parsed

    def answer_sql(self, text: str) -> float:
        """Answer a predicate-free SQL-subset query against live synopses.

        Queries with a ``WHERE`` clause must go through :meth:`prepare_sql`
        before ingestion instead (silently ignoring the predicate would be
        a correctness trap).
        """
        from .sql import parse_query

        with _METRICS.timer(
            "engine.sql.seconds"
        ) if _METRICS.enabled else nullcontext():
            with _TRACER.span(
                "engine.sql", sql=text.strip()
            ) if _TRACER.enabled else nullcontext():
                parsed = parse_query(text)
                if parsed.predicates:
                    raise QueryError(
                        "this query has WHERE predicates; set it up with "
                        "prepare_sql() before ingesting elements"
                    )
                return self.answer(parsed.query)

    @staticmethod
    def _streams_named_by(query: Query) -> tuple[str, ...]:
        if isinstance(query, (JoinSumQuery, JoinAverageQuery)):
            return (query.left, query.right, query.measure_stream)
        if isinstance(query, JoinCountQuery):
            return (query.left, query.right)
        if isinstance(query, SelfJoinQuery):
            return (query.stream,)
        if isinstance(query, PointQuery):
            return (query.stream,)
        return ()  # multi-join relations need explicit register_relation

    # -- query answering ----------------------------------------------------------

    def answer(self, query: Query) -> float:
        """Approximate answer to a §2.1 query from the maintained synopses."""
        if _METRICS.enabled:
            _METRICS.count("engine.queries")
            _METRICS.count(f"engine.queries.{type(query).__name__}")
        if _PROFILER.enabled:
            _PROFILER.mark("engine.answer")
        if _RECORDER.enabled:
            _RECORDER.pulse("queries")
        with _METRICS.timer(
            "engine.answer.seconds"
        ) if _METRICS.enabled else nullcontext():
            with _TRACER.span(
                "engine.answer", query=type(query).__name__
            ) if _TRACER.enabled else nullcontext() as sp:
                result = self._answer(query)
                if sp is not None:
                    sp.set(estimate=result)
        return result

    def _answer(self, query: Query) -> float:
        if isinstance(query, JoinCountQuery):
            return self._join_size(query.left, query.right)
        if isinstance(query, JoinSumQuery):
            return self._join_size(query.measure_stream, query.right)
        if isinstance(query, JoinAverageQuery):
            count = self._join_size(query.left, query.right)
            if count == 0:
                raise QueryError("AVERAGE over an (estimated) empty join")
            return self._join_size(query.measure_stream, query.right) / count
        if isinstance(query, SelfJoinQuery):
            return self._self_join_size(query.stream)
        if isinstance(query, PointQuery):
            return self._point(query.stream, query.value)
        if isinstance(query, MultiJoinCountQuery):
            return est_multi_join_count(
                [self._lookup_relation(name) for name in query.relations]
            )
        raise QueryError(f"unsupported query type {type(query).__name__}")

    # -- internals -------------------------------------------------------------------

    def _lookup(self, stream: str) -> _RegisteredStream:
        try:
            return self._streams[stream]
        except KeyError:
            raise QueryError(f"unknown stream {stream!r}") from None

    def _lookup_relation(self, relation: str) -> RelationSketch:
        try:
            return self._relations[relation]
        except KeyError:
            raise QueryError(f"unknown relation {relation!r}") from None

    def _join_size(self, left: str, right: str) -> float:
        estimate = float(
            self._lookup(left).synopsis.est_join_size(self._lookup(right).synopsis)
        )
        if _AUDIT.enabled:
            self._enrich_audit(estimate, left, right)
        return estimate

    def _self_join_size(self, stream: str) -> float:
        estimate = float(self._lookup(stream).synopsis.est_self_join_size())
        if _AUDIT.enabled:
            self._enrich_audit(estimate, stream, stream)
        return estimate

    def _enrich_audit(self, estimate: float, left: str, right: str) -> None:
        """Enrich the estimator-emitted audit of the query just answered.

        Adds stream names, per-stream sketch health, and — when a shadow
        auditor is attached — the realized error against the shadow-exact
        join size plus CI-coverage drift tracking.  Audit-path only: runs
        one skim + domain scan per stream per audited query.
        """
        if not _AUDIT.enabled:
            return
        audit = _AUDIT.last()
        if audit is None or audit.origin != "estimator":
            return  # non-skimmed synopsis: no audit was emitted for this query
        audit.origin = "engine"
        audit.streams = (left, right)
        if self.synopsis_kind == "skimmed":
            # Imported here: repro.eval pulls in the experiment stack, and
            # repro.streams must stay importable without it at module load.
            from ..eval.diagnostics import sketch_health

            audit.health = {
                name: sketch_health(self._lookup(name).synopsis).as_metrics()
                for name in dict.fromkeys((left, right))
            }
        if self._shadow is not None:
            exact, realized, covered, alert = self._shadow.observe_query(
                left, right, estimate, audit.ci_halfwidth
            )
            audit.shadow_exact = exact
            audit.realized_error = realized
            audit.realized_relative_error = (
                realized / abs(exact) if exact != 0 else float("inf")
            )
            audit.covered = covered
            if _METRICS.enabled:
                _METRICS.gauge("monitor.shadow.coverage", self._shadow.coverage())
                _METRICS.gauge("monitor.audit.realized_error", realized)
            if alert is not None:
                _AUDIT.alert(alert)
                if _METRICS.enabled:
                    _METRICS.count("monitor.drift.alerts")
                    _METRICS.gauge("monitor.drift.last_coverage", alert.coverage)
        if _METRICS.enabled:
            _METRICS.count("monitor.audits.enriched")

    def _point(self, stream: str, value: int) -> float:
        synopsis = self._lookup(stream).synopsis
        if isinstance(synopsis, AGMSSketch):
            raise QueryError(
                "point queries need a hash-based synopsis "
                "(engine synopsis='skimmed' or 'hash')"
            )
        return float(synopsis.point_estimate(value))

    def __repr__(self) -> str:
        return (
            f"StreamEngine(domain_size={self.domain_size}, "
            f"synopsis={self.synopsis_kind!r}, streams={list(self._streams)})"
        )
