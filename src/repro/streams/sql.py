"""A small SQL front-end for the paper's stream query class (§2.1).

The engine's typed AST (:mod:`repro.streams.query`) is the real interface;
this module adds the textual form a console or dashboard would speak.  The
accepted grammar covers exactly the aggregates the paper studies — nothing
more, by design:

.. code-block:: sql

    SELECT COUNT(*)        FROM f JOIN g
    SELECT SUM(f_rev)      FROM f JOIN g            -- measure stream f_rev
    SELECT AVG(f_rev)      FROM f JOIN g
    SELECT COUNT(*)        FROM f JOIN f            -- self-join (F2)
    SELECT FREQ(42)        FROM f                   -- point frequency
    SELECT COUNT(*)        FROM r1 JOIN r2 JOIN r3  -- multi-join relations
    SELECT COUNT(*)        FROM f JOIN g WHERE f < 100 AND g >= 10

``WHERE`` clauses compile to selection predicates on the named streams'
*values* (the streams are single-attribute, so ``f < 100`` filters stream
``f``).  Predicates are returned alongside the query because the stream
model applies them at *ingestion* time ("we simply drop ... elements that
do not satisfy the predicates, prior to updating the synopses"), so they
must be registered before elements flow — a parsed query's predicates are
advisory metadata for engine setup, not a post-hoc filter.

Grammar (case-insensitive keywords)::

    query     := SELECT agg FROM sources [WHERE conditions]
    agg       := COUNT(*) | SUM(name) | AVG(name) | FREQ(integer)
    sources   := name (JOIN name)*
    conditions:= condition (AND condition)*
    condition := name op integer
    op        := < | <= | > | >= | = | !=
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..errors import QueryError
from .query import (
    FunctionPredicate,
    JoinAverageQuery,
    JoinCountQuery,
    JoinSumQuery,
    MultiJoinCountQuery,
    PointQuery,
    Predicate,
    Query,
    RangePredicate,
    SelfJoinQuery,
)

_TOKEN_PATTERN = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<keyword>(?i:SELECT|FROM|JOIN|WHERE|AND|COUNT|SUM|AVG|FREQ)\b)
  | (?P<number>\d+)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><=|>=|!=|<|>|=)
  | (?P<punct>[(),*])
    """,
    re.VERBOSE,
)

_KEYWORDS = {"SELECT", "FROM", "JOIN", "WHERE", "AND", "COUNT", "SUM", "AVG", "FREQ"}


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (for error messages)."""

    kind: str
    text: str
    position: int


def tokenize(text: str) -> list[Token]:
    """Split a query string into tokens; raises :class:`QueryError` on junk."""
    tokens: list[Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_PATTERN.match(text, position)
        if match is None:
            raise QueryError(
                f"unexpected character {text[position]!r} at offset {position}"
            )
        kind = match.lastgroup or ""
        if kind != "ws":
            value = match.group()
            if kind == "keyword":
                value = value.upper()
            tokens.append(Token(kind, value, position))
        position = match.end()
    return tokens


@dataclass(frozen=True)
class ParsedQuery:
    """A compiled query plus per-stream ingestion predicates.

    ``predicates`` maps stream names to the selection predicate their
    ``WHERE`` conditions imply; register streams with these predicates
    *before* feeding elements (see module docstring).
    """

    query: Query
    predicates: dict[str, Predicate] = field(default_factory=dict)


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, tokens: list[Token], source: str):
        self._tokens = tokens
        self._source = source
        self._index = 0

    # -- token plumbing ----------------------------------------------------

    def _peek(self) -> Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _advance(self) -> Token:
        token = self._peek()
        if token is None:
            raise QueryError(f"unexpected end of query: {self._source!r}")
        self._index += 1
        return token

    def _expect(self, kind: str, text: str | None = None) -> Token:
        token = self._advance()
        if token.kind != kind or (text is not None and token.text != text):
            expected = text or kind
            raise QueryError(
                f"expected {expected!r} at offset {token.position}, "
                f"got {token.text!r}"
            )
        return token

    def _expect_name(self) -> str:
        token = self._advance()
        if token.kind != "name":
            raise QueryError(
                f"expected a stream name at offset {token.position}, "
                f"got {token.text!r}"
            )
        return token.text

    # -- grammar -------------------------------------------------------------

    def parse(self) -> ParsedQuery:
        self._expect("keyword", "SELECT")
        aggregate, argument = self._parse_aggregate()
        self._expect("keyword", "FROM")
        sources = self._parse_sources()
        conditions = self._parse_where()
        if self._peek() is not None:
            trailing = self._peek()
            raise QueryError(
                f"trailing input at offset {trailing.position}: {trailing.text!r}"
            )
        query = self._build_query(aggregate, argument, sources)
        return ParsedQuery(query=query, predicates=self._build_predicates(conditions))

    def _parse_aggregate(self) -> tuple[str, str]:
        token = self._advance()
        if token.kind != "keyword" or token.text not in ("COUNT", "SUM", "AVG", "FREQ"):
            raise QueryError(
                f"expected an aggregate at offset {token.position}, "
                f"got {token.text!r}"
            )
        self._expect("punct", "(")
        if token.text == "COUNT":
            self._expect("punct", "*")
            argument = "*"
        elif token.text == "FREQ":
            argument = self._expect("number").text
        else:
            argument = self._expect_name()
        self._expect("punct", ")")
        return token.text, argument

    def _parse_sources(self) -> list[str]:
        sources = [self._expect_name()]
        while True:
            token = self._peek()
            if token is None or token.text != "JOIN":
                return sources
            self._advance()
            sources.append(self._expect_name())

    def _parse_where(self) -> list[tuple[str, str, int]]:
        token = self._peek()
        if token is None or token.text != "WHERE":
            return []
        self._advance()
        conditions = [self._parse_condition()]
        while True:
            token = self._peek()
            if token is None or token.text != "AND":
                return conditions
            self._advance()
            conditions.append(self._parse_condition())

    def _parse_condition(self) -> tuple[str, str, int]:
        name = self._expect_name()
        op = self._advance()
        if op.kind != "op":
            raise QueryError(
                f"expected a comparison at offset {op.position}, got {op.text!r}"
            )
        value = int(self._expect("number").text)
        return name, op.text, value

    # -- compilation -----------------------------------------------------------

    def _build_query(self, aggregate: str, argument: str, sources: list[str]) -> Query:
        if aggregate == "FREQ":
            if len(sources) != 1:
                raise QueryError("FREQ takes exactly one stream")
            return PointQuery(sources[0], int(argument))
        if len(sources) < 2:
            raise QueryError(f"{aggregate} needs a join (FROM f JOIN g)")
        if aggregate == "COUNT":
            if len(sources) == 2:
                if sources[0] == sources[1]:
                    return SelfJoinQuery(sources[0])
                return JoinCountQuery(sources[0], sources[1])
            return MultiJoinCountQuery(relations=tuple(sources))
        if len(sources) != 2:
            raise QueryError(f"{aggregate} supports exactly two streams")
        if aggregate == "SUM":
            return JoinSumQuery(sources[0], sources[1], measure_stream=argument)
        return JoinAverageQuery(sources[0], sources[1], measure_stream=argument)

    def _build_predicates(
        self, conditions: list[tuple[str, str, int]]
    ) -> dict[str, Predicate]:
        grouped: dict[str, list[tuple[str, int]]] = {}
        for name, op, value in conditions:
            grouped.setdefault(name, []).append((op, value))
        return {
            name: _compile_conditions(name, ops) for name, ops in grouped.items()
        }


#: Upper bound used to express one-sided ranges as RangePredicate.
_UNBOUNDED = 1 << 62


def _compile_conditions(name: str, ops: list[tuple[str, int]]) -> Predicate:
    """AND-combine comparisons on one stream into a single predicate.

    Pure range conjunctions compile to a :class:`RangePredicate`; anything
    involving ``=`` / ``!=`` falls back to a function predicate.
    """
    low, high = 0, _UNBOUNDED
    leftovers: list[tuple[str, int]] = []
    for op, value in ops:
        if op == "<":
            high = min(high, value)
        elif op == "<=":
            high = min(high, value + 1)
        elif op == ">":
            low = max(low, value + 1)
        elif op == ">=":
            low = max(low, value)
        else:
            leftovers.append((op, value))
    if low >= high:
        raise QueryError(f"conditions on {name!r} are unsatisfiable")
    if not leftovers:
        return RangePredicate(low, high)

    def accepts(value: int, low=low, high=high, leftovers=tuple(leftovers)) -> bool:
        if not low <= value < high:
            return False
        for op, bound in leftovers:
            if op == "=" and value != bound:
                return False
            if op == "!=" and value == bound:
                return False
        return True

    return FunctionPredicate(accepts)


def parse_query(text: str) -> ParsedQuery:
    """Parse one SQL-subset query string into a typed query + predicates."""
    tokens = tokenize(text)
    if not tokens:
        raise QueryError("empty query")
    return _Parser(tokens, text).parse()
