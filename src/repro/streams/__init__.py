"""Stream substrate: data model, workload generators, query AST, the
Figure-1 query engine, and the multi-join extension."""

from .model import FrequencyVector, Update, iter_stream
from .generators import (
    census_like_pair,
    element_stream,
    insert_delete_stream,
    shifted_frequencies,
    shifted_zipf_pair,
    uniform_frequencies,
    zipf_frequencies,
    zipf_probabilities,
)
from .query import (
    FunctionPredicate,
    InSetPredicate,
    JoinAverageQuery,
    JoinCountQuery,
    JoinSumQuery,
    ModuloPredicate,
    MultiJoinCountQuery,
    PointQuery,
    Predicate,
    Query,
    RangePredicate,
    SelfJoinQuery,
    TruePredicate,
)
from .engine import StreamEngine
from .sql import ParsedQuery, parse_query
from .sources import (
    CallDetailRecord,
    CDRSource,
    InterfaceSample,
    SNMPSource,
    feed_engine,
)
from .windows import WindowedSketch, WindowedSketchSchema
from .multijoin import (
    MultiJoinSchema,
    RelationSketch,
    est_multi_join_count,
    validate_join_graph,
)

__all__ = [
    "CDRSource",
    "CallDetailRecord",
    "FrequencyVector",
    "FunctionPredicate",
    "InSetPredicate",
    "InterfaceSample",
    "JoinAverageQuery",
    "JoinCountQuery",
    "JoinSumQuery",
    "ModuloPredicate",
    "MultiJoinCountQuery",
    "MultiJoinSchema",
    "ParsedQuery",
    "PointQuery",
    "Predicate",
    "Query",
    "RangePredicate",
    "RelationSketch",
    "SNMPSource",
    "SelfJoinQuery",
    "StreamEngine",
    "TruePredicate",
    "Update",
    "WindowedSketch",
    "WindowedSketchSchema",
    "census_like_pair",
    "element_stream",
    "feed_engine",
    "est_multi_join_count",
    "insert_delete_stream",
    "iter_stream",
    "parse_query",
    "shifted_frequencies",
    "shifted_zipf_pair",
    "uniform_frequencies",
    "validate_join_graph",
    "zipf_frequencies",
    "zipf_probabilities",
]
