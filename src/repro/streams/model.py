"""Stream data model (Section 2.1 of the paper).

A data stream is an unordered sequence of *updates* over an integer domain
``[0, domain_size)``.  Each update carries a weight: ``+1`` for an insert,
``-1`` for a delete, and arbitrary values for weighted (``SUM``) semantics.
The net state of a stream at any point is its **frequency vector**
``f[v] = sum of weights of updates with value v``, and every aggregate the
library answers is a function of frequency vectors — e.g.
``COUNT(F join G) = <f, g>``, the inner product.

:class:`FrequencyVector` is the exact, in-memory representation used for
ground truth, workload generation, and the vectorised bulk-ingestion path
of the sketches.  :class:`Update` / :func:`iter_stream` model the
one-pass per-element view the paper's synopses consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..errors import DomainError, ParameterError


@dataclass(frozen=True, slots=True)
class Update:
    """A single stream element: domain ``value`` with additive ``weight``.

    ``weight=+1`` models an insertion, ``weight=-1`` a deletion; other
    weights model measure values for SUM-style aggregates (the paper
    reduces ``SUM_m(F join G)`` to a COUNT over a weight-expanded stream).
    """

    value: int
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.value < 0:
            raise DomainError(f"stream values must be non-negative, got {self.value}")


class FrequencyVector:
    """Dense exact frequency vector over ``[0, domain_size)``.

    A thin, validating wrapper around a ``float64`` numpy array with the
    joint/self-join algebra used throughout the paper:

    * ``join_size(other)`` — the inner product ``<f, g>`` =
      ``COUNT(F join G)``;
    * ``self_join_size()`` — the second moment ``F2 = sum f[v]^2``;
    * arithmetic (``+``, ``-``) for building residual vectors when testing
      the skimming machinery.
    """

    __slots__ = ("_counts",)

    def __init__(self, counts: np.ndarray | Sequence[float]):
        arr = np.asarray(counts, dtype=np.float64)
        if arr.ndim != 1:
            raise ParameterError(f"frequency vector must be 1-D, got shape {arr.shape}")
        if arr.size == 0:
            raise ParameterError("frequency vector must cover a non-empty domain")
        self._counts = arr.copy()

    # -- construction -----------------------------------------------------

    @classmethod
    def zeros(cls, domain_size: int) -> "FrequencyVector":
        """Empty-stream frequency vector over ``[0, domain_size)``."""
        if domain_size < 1:
            raise ParameterError(f"domain_size must be >= 1, got {domain_size}")
        return cls(np.zeros(domain_size))

    @classmethod
    def from_updates(cls, updates: Iterable[Update], domain_size: int) -> "FrequencyVector":
        """Aggregate a finite update stream into its frequency vector."""
        vec = cls.zeros(domain_size)
        for update in updates:
            vec.apply(update)
        return vec

    @classmethod
    def from_values(
        cls, values: Sequence[int] | np.ndarray, domain_size: int
    ) -> "FrequencyVector":
        """Frequency vector of a plain insert-only element sequence."""
        values = np.asarray(values, dtype=np.int64)
        if values.size and (values.min() < 0 or values.max() >= domain_size):
            raise DomainError("values fall outside [0, domain_size)")
        counts = np.bincount(values, minlength=domain_size).astype(np.float64)
        return cls(counts)

    # -- basic accessors ---------------------------------------------------

    @property
    def domain_size(self) -> int:
        """Size of the value domain the vector is defined over."""
        return int(self._counts.size)

    @property
    def counts(self) -> np.ndarray:
        """Read-only view of the underlying ``float64`` counts."""
        view = self._counts.view()
        view.flags.writeable = False
        return view

    def __getitem__(self, value: int) -> float:
        return float(self._counts[value])

    def __len__(self) -> int:
        return self.domain_size

    def copy(self) -> "FrequencyVector":
        """An independent copy (mutating it leaves ``self`` unchanged)."""
        return FrequencyVector(self._counts)

    # -- stream-side mutation ----------------------------------------------

    def apply(self, update: Update) -> None:
        """Apply one stream update in place."""
        if update.value >= self.domain_size:
            raise DomainError(
                f"value {update.value} outside domain [0, {self.domain_size})"
            )
        self._counts[update.value] += update.weight

    def apply_bulk(self, values: np.ndarray, weights: np.ndarray | None = None) -> None:
        """Apply many updates at once (vectorised ``bincount`` accumulate)."""
        values = np.asarray(values, dtype=np.int64)
        if values.size == 0:
            return
        if values.min() < 0 or values.max() >= self.domain_size:
            raise DomainError("values fall outside [0, domain_size)")
        if weights is None:
            add = np.bincount(values, minlength=self.domain_size)
        else:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != values.shape:
                raise ParameterError("weights must have the same shape as values")
            add = np.bincount(values, weights=weights, minlength=self.domain_size)
        self._counts += add

    # -- aggregates ---------------------------------------------------------

    def total_count(self) -> float:
        """Net stream size ``N = sum f[v]`` (paper's ``|F|`` for insert-only)."""
        return float(self._counts.sum())

    def absolute_mass(self) -> float:
        """``sum |f[v]|`` — the L1 norm, equal to ``N`` for insert-only streams."""
        return float(np.abs(self._counts).sum())

    def self_join_size(self) -> float:
        """Second moment ``F2 = sum f[v]^2`` (self-join size, Section 2.2)."""
        return float(np.dot(self._counts, self._counts))

    def join_size(self, other: "FrequencyVector") -> float:
        """Exact ``COUNT(F join G) = <f, g>`` (requires equal domains)."""
        if other.domain_size != self.domain_size:
            raise ParameterError(
                f"domain mismatch: {self.domain_size} vs {other.domain_size}"
            )
        return float(np.dot(self._counts, other._counts))

    def support(self) -> np.ndarray:
        """Domain values with non-zero frequency, ascending ``int64`` array."""
        return np.flatnonzero(self._counts).astype(np.int64)

    def nonzero_items(self) -> Iterator[tuple[int, float]]:
        """Iterate ``(value, frequency)`` pairs over the support."""
        for value in self.support():
            yield int(value), float(self._counts[value])

    # -- algebra --------------------------------------------------------------

    def __add__(self, other: "FrequencyVector") -> "FrequencyVector":
        if other.domain_size != self.domain_size:
            raise ParameterError("domain mismatch")
        return FrequencyVector(self._counts + other._counts)

    def __sub__(self, other: "FrequencyVector") -> "FrequencyVector":
        if other.domain_size != self.domain_size:
            raise ParameterError("domain mismatch")
        return FrequencyVector(self._counts - other._counts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FrequencyVector):
            return NotImplemented
        return np.array_equal(self._counts, other._counts)

    def __repr__(self) -> str:
        return (
            f"FrequencyVector(domain_size={self.domain_size}, "
            f"N={self.total_count():g}, F2={self.self_join_size():g})"
        )


def iter_stream(
    frequencies: FrequencyVector,
    rng: np.random.Generator | None = None,
) -> Iterator[Update]:
    """Materialise a frequency vector as a one-pass insert/delete stream.

    Emits ``|f[v]|`` unit-weight updates per value (sign matching the
    frequency sign); if ``rng`` is given the updates are shuffled so the
    arrival order is arbitrary, as the stream model requires.  Fractional
    frequencies are emitted as one weighted update.  Useful for testing
    that per-element sketch maintenance matches bulk ingestion.
    """
    updates: list[Update] = []
    for value, freq in frequencies.nonzero_items():
        whole, frac = int(freq), freq - int(freq)
        sign = 1.0 if whole >= 0 else -1.0
        updates.extend(Update(value, sign) for _ in range(abs(whole)))
        if frac:
            updates.append(Update(value, frac))
    if rng is not None:
        order = rng.permutation(len(updates))
        updates = [updates[i] for i in order]
    yield from updates
