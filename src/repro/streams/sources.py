"""Synthetic record sources for the paper's motivating applications (§1).

The introduction motivates stream joins with Telecom/ISP monitoring: Call
Detail Records (CDRs) collected continuously, SNMP/RMON interface polls,
retail transactions.  These sources generate *records* with realistic
statistical structure (Zipf-popular entities, diurnal rate modulation,
correlated attributes) and adapt them to the single-attribute update
streams the synopses consume — so examples, tests and demos can exercise
the full record -> predicate -> synopsis -> query pipeline instead of
feeding raw integers.

All sources are deterministic given their seed and produce plain
dataclass records; :func:`feed_engine` bridges any record iterable into a
:class:`~repro.streams.engine.StreamEngine` stream via a key function.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

import numpy as np

from .generators import zipf_probabilities
from ..errors import ParameterError


@dataclass(frozen=True)
class CallDetailRecord:
    """One CDR: who called whom, for how long, through which cell."""

    caller: int
    callee: int
    duration_seconds: int
    cell: int


@dataclass(frozen=True)
class InterfaceSample:
    """One SNMP poll result: an interface and its octet delta."""

    interface: int
    octets: int


class CDRSource:
    """Synthetic Call-Detail-Record stream.

    Caller and callee popularity are Zipfian (a few subscribers make most
    calls — the skew that motivates skimming); call volume follows a
    diurnal curve; durations are log-normal.

    Parameters
    ----------
    num_subscribers:
        Size of the subscriber id domain (callers and callees).
    num_cells:
        Size of the cell-tower id domain.
    popularity_skew:
        Zipf parameter of subscriber popularity.
    seed:
        Determines the whole record stream.
    """

    def __init__(
        self,
        num_subscribers: int,
        num_cells: int = 256,
        popularity_skew: float = 1.1,
        seed: int = 0,
    ):
        if num_subscribers < 2:
            raise ParameterError(f"need >= 2 subscribers, got {num_subscribers}")
        if num_cells < 1:
            raise ParameterError(f"need >= 1 cells, got {num_cells}")
        self.num_subscribers = num_subscribers
        self.num_cells = num_cells
        self._rng = np.random.default_rng(seed)
        self._popularity = zipf_probabilities(num_subscribers, popularity_skew)
        # Callee popularity uses an independently permuted Zipf so heavy
        # callers and heavy callees are different subscribers.
        self._callee_popularity = self._popularity[
            self._rng.permutation(num_subscribers)
        ]

    def records(
        self, num_records: int, hour_of_day: float = 12.0
    ) -> Iterator[CallDetailRecord]:
        """Yield ``num_records`` CDRs as if collected around ``hour_of_day``.

        The diurnal factor scales *durations* (calls at 3am run shorter);
        record count is caller-controlled so tests stay deterministic.
        """
        if num_records < 0:
            raise ParameterError(f"num_records must be non-negative, got {num_records}")
        diurnal = 0.6 + 0.4 * math.sin(math.pi * (hour_of_day % 24.0) / 24.0)
        callers = self._rng.choice(
            self.num_subscribers, size=num_records, p=self._popularity
        )
        callees = self._rng.choice(
            self.num_subscribers, size=num_records, p=self._callee_popularity
        )
        durations = np.maximum(
            1, np.round(self._rng.lognormal(np.log(120.0 * diurnal), 1.0, num_records))
        ).astype(np.int64)
        cells = self._rng.integers(0, self.num_cells, size=num_records)
        for i in range(num_records):
            yield CallDetailRecord(
                caller=int(callers[i]),
                callee=int(callees[i]),
                duration_seconds=int(durations[i]),
                cell=int(cells[i]),
            )


class SNMPSource:
    """Synthetic SNMP interface-counter poll stream.

    A handful of backbone interfaces carry most octets (Zipf traffic
    split); each poll reports one interface's octet delta.
    """

    def __init__(
        self,
        num_interfaces: int,
        traffic_skew: float = 1.0,
        mean_octets: float = 1e6,
        seed: int = 0,
    ):
        if num_interfaces < 1:
            raise ParameterError(f"need >= 1 interfaces, got {num_interfaces}")
        if mean_octets <= 0:
            raise ParameterError(f"mean_octets must be positive, got {mean_octets}")
        self.num_interfaces = num_interfaces
        self.mean_octets = mean_octets
        self._rng = np.random.default_rng(seed)
        self._traffic_share = zipf_probabilities(num_interfaces, traffic_skew)

    def polls(self, num_polls: int) -> Iterator[InterfaceSample]:
        """Yield ``num_polls`` interface samples."""
        if num_polls < 0:
            raise ParameterError(f"num_polls must be non-negative, got {num_polls}")
        interfaces = self._rng.choice(
            self.num_interfaces, size=num_polls, p=self._traffic_share
        )
        for interface in interfaces:
            octets = self.mean_octets * self.num_interfaces * float(
                self._traffic_share[interface]
            )
            jitter = self._rng.lognormal(0.0, 0.3)
            yield InterfaceSample(
                interface=int(interface), octets=int(max(1, octets * jitter))
            )


def feed_engine(
    engine,
    stream: str,
    records: Iterable,
    key: Callable[[object], int],
    weight: Callable[[object], float] | None = None,
) -> int:
    """Pipe typed records into one engine stream; returns records fed.

    ``key`` extracts the join-attribute value from a record; ``weight``
    (optional) extracts a measure for SUM-style weighted streams.  The
    engine's registered predicate still applies per element.
    """
    count = 0
    for record in records:
        engine.process(
            stream,
            key(record),
            1.0 if weight is None else float(weight(record)),
        )
        count += 1
    return count
