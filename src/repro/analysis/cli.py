"""``python -m repro.analysis`` — the linter's command-line front end.

Exit codes (stable contract, relied on by ``make lint`` and CI):

* ``0`` — every analysed file is clean;
* ``1`` — at least one finding survived suppression (or, for the
  ``suppressions`` subcommand with ``--strict``, a reason-less
  suppression exists);
* ``2`` — usage error (unknown flag, unknown rule id, missing path).

Besides linting, the CLI exports machine-readable artifacts: ``--json``
(the native report), ``--sarif FILE`` (SARIF 2.1.0 for GitHub code
scanning), ``--graph-out FILE`` (the project call graph with R9 purity
classes), and the ``suppressions`` audit subcommand.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from .engine import analyze_paths
from .registry import all_rules, catalogue


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (separate for testability/docs)."""
    rule_ids = ", ".join(rule.rule_id for rule in all_rules())
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Domain-invariant static analysis for the skimmed-sketch "
            f"kernels (rules: {rule_ids}; see docs/STATIC_ANALYSIS.md)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyse (default: src)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable JSON report instead of text",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--catalogue",
        action="store_true",
        help="print the rule catalogue (derived from rule docstrings) and exit",
    )
    parser.add_argument(
        "--sarif",
        metavar="FILE",
        help="also write the report as SARIF 2.1.0 to FILE ('-' for stdout)",
    )
    parser.add_argument(
        "--graph-out",
        metavar="FILE",
        help=(
            "also dump the project call graph (with R9 purity classes) as "
            "JSON to FILE ('-' for stdout)"
        ),
    )
    return parser


def build_suppressions_parser() -> argparse.ArgumentParser:
    """Parser for the ``suppressions`` audit subcommand."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis suppressions",
        description=(
            "Audit every '# repro: noqa' site: rule(s), git-blame age, and "
            "the reason comment.  With --strict, reason-less suppressions "
            "fail the run (exit 1)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to audit (default: src)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 if any suppression lacks a reason comment",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the audit as JSON instead of text",
    )
    parser.add_argument(
        "--no-blame",
        action="store_true",
        help="skip git blame (faster; age reported as 'unknown')",
    )
    return parser


def _write_artifact(path: str, payload: dict[str, object]) -> None:
    text = json.dumps(payload, indent=2, sort_keys=True)
    if path == "-":
        print(text)
    else:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")


def _suppressions_main(argv: Sequence[str]) -> int:
    from .suppress import audit

    parser = build_suppressions_parser()
    args = parser.parse_args(argv)
    try:
        suppressions, exit_code = audit(
            args.paths, strict=args.strict, with_age=not args.no_blame
        )
    except FileNotFoundError as exc:
        parser.error(f"no such file or directory: {exc.args[0]}")
    if args.json:
        print(
            json.dumps(
                {
                    "version": 1,
                    "suppressions": [
                        {
                            "path": s.path,
                            "line": s.line,
                            "rules": list(s.rules),
                            "reason": s.reason,
                            "age": s.age,
                        }
                        for s in suppressions
                    ],
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for suppression in suppressions:
            print(suppression.render())
        reasonless = sum(1 for s in suppressions if not s.reason)
        print(
            f"{len(suppressions)} suppression(s), {reasonless} without a reason",
            file=sys.stderr,
        )
    return exit_code


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "suppressions":
        return _suppressions_main(list(argv[1:]))
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.catalogue:
        try:
            print("\n".join(catalogue()))
        except BrokenPipeError:  # `... --catalogue | head` closed the pipe
            sys.stderr.close()
        return 0

    select: list[str] | None = None
    if args.select is not None:
        select = [part.strip() for part in args.select.split(",") if part.strip()]
        if not select:
            parser.error("--select given but no rule ids parsed")

    try:
        report = analyze_paths(args.paths, select=select)
    except KeyError as exc:
        parser.error(f"unknown rule id {exc.args[0]!r}")
    except FileNotFoundError as exc:
        parser.error(f"no such file or directory: {exc.args[0]}")

    if args.sarif:
        from .sarif import to_sarif

        _write_artifact(args.sarif, to_sarif(report))
    if args.graph_out:
        from .rules.r9_linearity import classify_purity

        assert report.project is not None
        graph = report.project.graph
        _write_artifact(
            args.graph_out, graph.to_dict(purity=classify_purity(report.project))
        )

    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        for finding in report.findings:
            print(finding.render())
        summary = (
            f"{len(report.findings)} finding(s) in {report.files_scanned} "
            f"file(s) ({report.suppressed} suppressed)"
        )
        print(summary if report.findings else f"clean: {summary}", file=sys.stderr)
    return report.exit_code()
