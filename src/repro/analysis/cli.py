"""``python -m repro.analysis`` — the linter's command-line front end.

Exit codes (stable contract, relied on by ``make lint`` and CI):

* ``0`` — every analysed file is clean;
* ``1`` — at least one finding survived suppression;
* ``2`` — usage error (unknown flag, unknown rule id, missing path).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from .engine import analyze_paths
from .registry import all_rules, catalogue


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (separate for testability/docs)."""
    rule_ids = ", ".join(rule.rule_id for rule in all_rules())
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Domain-invariant static analysis for the skimmed-sketch "
            f"kernels (rules: {rule_ids}; see docs/STATIC_ANALYSIS.md)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyse (default: src)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable JSON report instead of text",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--catalogue",
        action="store_true",
        help="print the rule catalogue (derived from rule docstrings) and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.catalogue:
        try:
            print("\n".join(catalogue()))
        except BrokenPipeError:  # `... --catalogue | head` closed the pipe
            sys.stderr.close()
        return 0

    select: list[str] | None = None
    if args.select is not None:
        select = [part.strip() for part in args.select.split(",") if part.strip()]
        if not select:
            parser.error("--select given but no rule ids parsed")

    try:
        report = analyze_paths(args.paths, select=select)
    except KeyError as exc:
        parser.error(f"unknown rule id {exc.args[0]!r}")
    except FileNotFoundError as exc:
        parser.error(f"no such file or directory: {exc.args[0]}")

    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        for finding in report.findings:
            print(finding.render())
        summary = (
            f"{len(report.findings)} finding(s) in {report.files_scanned} "
            f"file(s) ({report.suppressed} suppressed)"
        )
        print(summary if report.findings else f"clean: {summary}", file=sys.stderr)
    return report.exit_code()
