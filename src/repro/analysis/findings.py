"""Finding: one rule violation at one source location.

Findings are plain, hashable value objects so the engine can sort,
deduplicate, count and serialise them without any further machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Pseudo-rule id attached to files the engine cannot parse at all.
PARSE_ERROR_RULE = "E1"


@dataclass(frozen=True)
class Finding:
    """A single ``file:line:col`` diagnostic emitted by one rule.

    Attributes
    ----------
    rule:
        Rule identifier (``R1`` .. ``R6``, or ``E1`` for syntax errors).
    path:
        Path of the offending file, as given to the engine.
    line:
        1-based source line of the offending node.
    col:
        0-based column of the offending node.
    message:
        Human-readable description of the violated invariant.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> tuple[str, int, int, str]:
        """Stable ordering: by file, then position, then rule id."""
        return (self.path, self.line, self.col, self.rule)

    def render(self) -> str:
        """``path:line:col: RULE message`` — the human report line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation (see ``docs/STATIC_ANALYSIS.md``)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
