"""R10 — concurrency discipline over the parallel ingestion plane."""

from __future__ import annotations

import ast
import re
from typing import TYPE_CHECKING, Iterator

from ..findings import Finding
from ..flow.callgraph import CallGraph, FunctionNode
from ..registry import Rule, register

if TYPE_CHECKING:
    from ..flow.project import ProjectContext

#: Mutating container-method names: calling one on shared state from the
#: worker plane is a write, not a read.
_MUTATORS = frozenset(
    {
        "append",
        "add",
        "clear",
        "extend",
        "insert",
        "pop",
        "popitem",
        "remove",
        "setdefault",
        "update",
    }
)

#: Names that, by parallel-plane convention, hold one entry *per shard*
#: (attached counter views, shared-memory segments, shard sketches).
#: Worker-plane code indexing into such a collection to write can reach
#: another worker's memory.
_SHARD_COLLECTIONS = re.compile(r"(?:^|_)(?:views|segments|shards)$")


@register
class ConcurrencyDiscipline(Rule):
    """Worker-plane code must not write coordinator or module state.

    The parallel plane is exact *because* of a strict ownership split:
    worker strategies (``*Strategy.ingest`` and the ``_worker_*`` process
    functions) only touch their own shard sketches, and every result
    re-enters the coordinator exclusively through the flush/merge seam
    (``flush`` → ``merged``).  A worker writing a coordinator attribute
    (shard list, dirty flag, pending counters) or mutating module-level
    state is a data race waiting for the shared-memory rewrite.

    The shared-memory mode sharpens the discipline: a worker's writes to
    sketch counters are legal only inside its *own* attached segment
    view (shard ``i`` -> worker ``i``), with everything else crossing at
    the flush barrier.  Indexing into a per-shard collection (``views``,
    ``segments``, ``shards``) to write is how code reaches *another*
    worker's memory, so the pass treats it as a violation regardless of
    the index expression.

    This pass builds the worker-plane call closure over
    ``repro.parallel`` and flags writes, from inside it, to (a) any
    attribute name a coordinator class initialises in ``__init__``,
    (b) any module-level variable, or (c) any element of a per-shard
    collection.

    Example violations::

        class _EagerStrategy:
            def ingest(self, owner, parts):
                owner._merged = None        # R10: bypasses the flush seam

        def _worker_scrub(views, shard):
            views[shard + 1][:] = 0.0       # R10: another shard's view

    Fix: leave coordinator state to the coordinator; hand results back
    from ``flush`` and let ``merged()`` fold them in; write counters
    only through the single view the worker attached at startup.
    """

    rule_id = "R10"
    title = "worker-plane writes must pass through the flush/merge seam"
    scope = "project"

    def check_project(self, project: "ProjectContext") -> Iterator[Finding]:
        contexts = [
            ctx for ctx in project.contexts if ctx.subpackage == "parallel"
        ]
        if not contexts:
            return
        graph = project.graph
        parallel_paths = {ctx.path for ctx in contexts}

        shared_attrs = _coordinator_attrs(graph, parallel_paths)
        module_state = _module_level_names(contexts)
        seeds = _worker_seeds(graph, parallel_paths)
        worker_plane = {
            qualname
            for qualname in graph.reachable_from(seeds)
            if graph.functions[qualname].path in parallel_paths
        }

        for qualname in sorted(worker_plane):
            fn = graph.functions[qualname]
            path = graph.call_path_to(qualname)
            via = " -> ".join(path)
            for node, detail in _shared_writes(
                fn, shared_attrs, module_state.get(fn.module, frozenset())
            ):
                yield Finding(
                    self.rule_id,
                    fn.path,
                    node.lineno,
                    node.col_offset,
                    f"worker-plane code writes {detail} in {fn.qualname} "
                    f"(reached from a worker strategy via: {via}); shared "
                    "state must only change through the coordinator's "
                    "flush/merge seam",
                )


def _coordinator_attrs(graph: CallGraph, parallel_paths: set[str]) -> frozenset[str]:
    """Attribute names coordinator classes initialise in ``__init__``.

    A coordinator is any parallel-plane class exposing the merge seam
    (``merged`` or ``flush``) that is *not* itself a worker strategy.
    """
    attrs: set[str] = set()
    for cls in graph.classes.values():
        if cls.path not in parallel_paths or cls.name.endswith("Strategy"):
            continue
        if not ({"merged", "flush"} & cls.methods.keys()):
            continue
        init = cls.methods.get("__init__")
        if init is None:
            continue
        for node in ast.walk(graph.functions[init].node):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        attrs.add(target.attr)
    return frozenset(attrs)


def _module_level_names(contexts: list) -> dict[str, frozenset[str]]:
    """Module -> names bound by module-level assignments (mutable state)."""
    from ..flow.callgraph import module_name_for_path

    out: dict[str, frozenset[str]] = {}
    for ctx in contexts:
        names: set[str] = set()
        for node in ctx.tree.body:
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        out[module_name_for_path(ctx.path)] = frozenset(names)
    return out


def _worker_seeds(graph: CallGraph, parallel_paths: set[str]) -> list[str]:
    """Entry points of the worker plane: strategy ``ingest`` methods and
    process-worker module functions (``_worker_*``)."""
    seeds = []
    for fn in graph.functions.values():
        if fn.path not in parallel_paths:
            continue
        if fn.class_name is not None and fn.class_name.endswith("Strategy"):
            if fn.name == "ingest":
                seeds.append(fn.qualname)
        elif fn.class_name is None and fn.name.startswith("_worker_"):
            seeds.append(fn.qualname)
    return seeds


def _is_shard_collection(base: ast.AST) -> bool:
    """True if ``base`` names a per-shard collection (views/segments/shards)."""
    if isinstance(base, ast.Name):
        return bool(_SHARD_COLLECTIONS.search(base.id))
    if isinstance(base, ast.Attribute):
        return bool(_SHARD_COLLECTIONS.search(base.attr))
    return False


def _shared_writes(
    fn: FunctionNode,
    shared_attrs: frozenset[str],
    module_state: frozenset[str],
) -> Iterator[tuple[ast.AST, str]]:
    """Write sites inside ``fn`` that hit shared coordinator/module state."""
    locals_bound: set[str] = {
        arg.arg
        for arg in [
            *fn.node.args.posonlyargs,
            *fn.node.args.args,
            *fn.node.args.kwonlyargs,
        ]
    }
    in_init = fn.name == "__init__"
    for node in ast.walk(fn.node):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                list(node.targets)
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                base = target
                subscripted = False
                while isinstance(base, ast.Subscript):
                    base = base.value
                    subscripted = True
                if isinstance(base, ast.Attribute) and base.attr in shared_attrs:
                    receiver_is_self = (
                        isinstance(base.value, ast.Name)
                        and base.value.id == "self"
                    )
                    if in_init and receiver_is_self:
                        continue
                    yield base, f"coordinator attribute `{base.attr}`"
                elif subscripted and _is_shard_collection(base):
                    name = base.id if isinstance(base, ast.Name) else base.attr
                    yield base, (
                        f"through shard-view collection `{name}` (a worker "
                        "owns exactly one attached view; indexing across "
                        "the collection reaches another worker's memory)"
                    )
                elif isinstance(base, ast.Name) and base.id in module_state:
                    if base is target:
                        # Rebinding a local of the same name, not the global
                        # (workers never declare `global`), unless augmented.
                        if isinstance(node, ast.AugAssign):
                            yield base, f"module-level state `{base.id}`"
                        else:
                            locals_bound.add(base.id)
                    elif base.id not in locals_bound:
                        yield base, f"module-level state `{base.id}`"
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATORS
                and isinstance(func.value, ast.Name)
                and func.value.id in module_state
                and func.value.id not in locals_bound
            ):
                yield func, (
                    f"module-level state `{func.value.id}` (via .{func.attr})"
                )
