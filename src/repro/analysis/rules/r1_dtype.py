"""R1 — dtype discipline in kernel modules."""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import call_keyword, is_numpy_attr
from ..context import FileContext, Role
from ..findings import Finding
from ..registry import Rule, register

#: Array factories whose default dtype depends on the input (or silently
#: becomes float64), which is how int64/float64 discipline erodes.
FACTORIES = frozenset({"asarray", "zeros", "empty"})


@register
class DtypeDiscipline(Rule):
    """Kernel array construction must pass an explicit ``dtype``.

    The sketch kernels are vectorised numpy code whose correctness *and*
    throughput depend on stable dtypes: domain values are ``int64``,
    counters and frequencies are ``float64`` (hash evaluation uses
    ``uint64`` internally).  ``np.asarray`` / ``np.zeros`` / ``np.empty``
    without ``dtype=`` inherit whatever the caller passed — an
    ``object`` or ``float32`` array entering ``update_bulk`` silently
    changes estimate semantics and kills vectorisation.  This rule flags
    every such call in ``repro.sketches`` / ``repro.hashing`` /
    ``repro.core``.

    Example violation::

        counters = np.zeros((depth, width))          # R1

    Fix::

        counters = np.zeros((depth, width), dtype=np.float64)

    Suppress (only where the *point* is dtype dispatch on the input)::

        arr = np.asarray(values)  # repro: noqa[R1]
    """

    rule_id = "R1"
    title = "explicit dtype in kernel array construction"

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.role is Role.KERNEL

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) or not is_numpy_attr(func, FACTORIES):
                continue
            if call_keyword(node, "dtype") is not None:
                continue
            name = func.attr
            yield self.finding(
                ctx,
                node.lineno,
                node.col_offset,
                f"np.{name} in kernel code must pass an explicit dtype "
                "(int64 for domain values, float64 for counters)",
            )
