"""R4 — shared randomness flows through schema objects, never raw families."""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import enclosing_class_names
from ..context import FileContext, Role
from ..findings import Finding
from ..registry import Rule, register

#: The raw hash/sign family constructors that must stay behind schemas.
FAMILY_CONSTRUCTORS = frozenset({"PairwiseBucketHash", "FourWiseSignFamily"})


@register
class SharedRandomness(Rule):
    """Sketches joined later must be built from one ``*Schema`` object.

    The paper (Section 4.3) requires joined sketches to "use identical
    hash functions h_i"; in this repo the *only* sanctioned way to share
    that randomness is a schema object (``HashSketchSchema``,
    ``AGMSSchema``, ``MultiJoinSchema``, ...) handed to every sketch.
    Constructing ``PairwiseBucketHash`` or ``FourWiseSignFamily``
    directly at a use site creates randomness that nothing else can
    share — joining such sketches is a silent correctness bug.

    This rule flags direct calls to the family constructors in non-test
    code, except inside ``repro.hashing`` itself (where they are defined
    and composed) and inside the body of a class whose name ends in
    ``Schema`` (the sanctioned shared-randomness containers).

    Example violation::

        signs = FourWiseSignFamily(depth, rng)        # R4 (ad-hoc family)

    Fix: create a schema and let it own the families::

        schema = HashSketchSchema(width, depth, domain_size, seed=seed)
        sketch = schema.create_sketch()
    """

    rule_id = "R4"
    title = "sketch randomness constructed via schemas only"

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.role is Role.TEST or ctx.role is Role.UNKNOWN:
            return False
        return ctx.subpackage != "hashing"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        owners = enclosing_class_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Name) or func.id not in FAMILY_CONSTRUCTORS:
                continue
            owner = owners.get(node)
            if owner is not None and owner.endswith("Schema"):
                continue
            yield self.finding(
                ctx,
                node.lineno,
                node.col_offset,
                f"raw {func.id} constructed outside a *Schema class; "
                "join-compatible sketches must share randomness via a schema",
            )
