"""R11 — interprocedural numpy-dtype propagation through the kernels."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..context import Role
from ..findings import Finding
from ..flow.dtypes import DTYPES, AValue, DtypeInterpreter, _scalar
from ..registry import Rule, register

if TYPE_CHECKING:
    from ..flow.callgraph import CallGraph
    from ..flow.project import ProjectContext

#: Dtypes acceptable for *domain value* arguments (array indices into the
#: stream domain).  ``bool`` is excluded on purpose: a boolean array in a
#: values position is almost certainly a mask passed where indices belong.
_VALUES_OK = frozenset({"int8", "int32", "int64", "uint64"})

#: Dtypes acceptable for *mass/weight/frequency* arguments; integers
#: convert to float64 exactly, ``bool``/``uint64`` signal a bug upstream.
_MASSES_OK = frozenset({"int8", "int32", "int64", "float64"})

#: Argument contracts of the sketch-algebra seams, keyed by bare callee
#: name: (position, keyword, family, description).
_SINKS: dict[str, tuple[tuple[int, str, frozenset[str], str], ...]] = {
    "update_bulk": (
        (0, "values", _VALUES_OK, "domain values"),
        (1, "weights", _MASSES_OK, "weights"),
    ),
    "update_coalesced": (
        (0, "values", _VALUES_OK, "domain values"),
        (1, "masses", _MASSES_OK, "masses"),
    ),
    "subtract_frequencies": (
        (0, "values", _VALUES_OK, "domain values"),
        (1, "frequencies", _MASSES_OK, "frequencies"),
    ),
    "_apply_point_masses": (
        (0, "values", _VALUES_OK, "domain values"),
        (1, "masses", _MASSES_OK, "masses"),
    ),
    "point_estimates": ((0, "values", _VALUES_OK, "domain values"),),
    "bulk_tables": ((0, "values", _VALUES_OK, "domain values"),),
    "coalesce_updates": (
        (0, "values", _VALUES_OK, "domain values"),
        (1, "weights", _MASSES_OK, "weights"),
    ),
}

#: Return-dtype contracts by bare function name: estimates are float64;
#: ``coalesce_updates`` returns (int64 uniques, float64 masses).
_RETURNS: dict[str, tuple[str, ...]] = {
    "point_estimates": ("float64",),
    "all_point_estimates": ("float64",),
    "table_join_estimates": ("float64",),
    "coalesce_updates": ("int64", "float64"),
}


@register
class KernelDtypeFlow(Rule):
    """Prove the int64-values / float64-counters invariants hold end to end.

    R1 checks dtypes where arrays are *allocated*; this pass checks them
    where arrays are *used*.  An abstract interpreter propagates numpy
    dtypes through locals, arithmetic, indexing, and — via the project
    call graph — through calls and returns of other kernel functions,
    then verifies at every sketch-algebra seam that domain values arrive
    integer-typed and masses arrive float-compatible, that ``_counters``
    arrays are (re)bound float64, and that estimate functions return
    float64.  Only *provable* violations fire: an unknown dtype is
    silent, so the pass adds no false-positive burden as kernels grow.

    Example violation::

        def masses_of(batch):
            return np.asarray(batch, dtype=np.float64)

        def ingest(sketch, batch):
            sketch.update_coalesced(masses_of(batch), batch)   # R11

    (the float64 array produced two calls away lands in the integer
    ``values`` seat).  Fix: keep values ``int64`` end to end and pass
    masses in the masses seat.
    """

    rule_id = "R11"
    title = "kernel dtype invariants hold through calls and returns"
    scope = "project"

    def check_project(self, project: "ProjectContext") -> Iterator[Finding]:
        kernel_fns = sorted(
            project.functions(roles=frozenset({Role.KERNEL})),
            key=lambda f: f.qualname,
        )
        if not kernel_fns:
            return
        graph = project.graph
        interp = DtypeInterpreter(graph)
        for fn in kernel_fns:
            inference = interp.analyze(fn)
            yield from self._check_counter_writes(fn, graph, inference)
            yield from self._check_sinks(fn, graph, inference)
            yield from self._check_returns(fn, graph, inference)

    def _check_counter_writes(self, fn, graph, inference) -> Iterator[Finding]:
        for write in inference.attr_writes:
            if write.attr != "_counters":
                continue
            dtype = _scalar(write.value)
            if dtype in DTYPES and dtype != "float64":
                yield Finding(
                    self.rule_id,
                    fn.path,
                    write.node.lineno,
                    write.node.col_offset,
                    f"`_counters` bound to a {dtype} array in {fn.qualname}"
                    f"{_origin(write.value)}; counters must be float64 "
                    "(exact integer arithmetic up to 2**53 plus fractional "
                    f"masses){_via(graph, fn)}",
                )

    def _check_sinks(self, fn, graph, inference) -> Iterator[Finding]:
        for call in inference.calls:
            contracts = _SINKS.get(call.func_name)
            if contracts is None:
                continue
            for position, keyword, allowed, describe in contracts:
                if keyword in call.keywords:
                    value = call.keywords[keyword]
                elif position < len(call.args):
                    value = call.args[position]
                else:
                    continue
                dtype = _scalar(value)
                if dtype in DTYPES and dtype not in allowed:
                    expected = (
                        "an integer array"
                        if allowed is _VALUES_OK
                        else "a float64-compatible array"
                    )
                    yield Finding(
                        self.rule_id,
                        fn.path,
                        call.node.lineno,
                        call.node.col_offset,
                        f"{describe} argument `{keyword}` of "
                        f"{call.func_name} has dtype {dtype}"
                        f"{_origin(value)} but must be {expected}"
                        f"{_via(graph, fn)}",
                    )

    def _check_returns(self, fn, graph, inference) -> Iterator[Finding]:
        expected = _RETURNS.get(fn.name)
        if expected is None:
            return
        value = inference.return_value
        actual: tuple[str, ...]
        if value.is_tuple():
            actual = tuple(value.dtype)
        else:
            actual = (str(value.dtype),)
        if len(expected) != len(actual) and len(expected) > 1:
            return  # structure not proven; stay silent
        for want, got in zip(expected, actual):
            if got in DTYPES and got != want:
                yield Finding(
                    self.rule_id,
                    fn.path,
                    fn.lineno,
                    0,
                    f"{fn.qualname} returns {got}{_origin(value)} but its "
                    f"contract requires {want}{_via(graph, fn)}",
                )
                return


def _origin(value: AValue) -> str:
    return f" ({value.origin})" if value.origin else ""


def _via(graph: "CallGraph", fn) -> str:
    path = graph.call_path_to(fn.qualname)
    return f"; call path: {' -> '.join(path)}"
