"""R5 — error discipline: raise ``repro.errors`` types, never bare ones."""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import STANDALONE_PACKAGES, FileContext, Role
from ..findings import Finding
from ..registry import Rule, register

#: Exception types library code must not raise directly.
BANNED_EXCEPTIONS = frozenset({"ValueError", "AssertionError"})


@register
class ErrorDiscipline(Rule):
    """Library code raises ``repro.errors`` types, not bare ``ValueError``.

    Callers are promised that one ``except ReproError`` guards an API
    boundary; a bare ``ValueError`` escaping the library breaks that
    contract, and a validation ``assert`` disappears entirely under
    ``python -O``.  This rule flags, everywhere under ``src/repro``:

    * ``raise ValueError(...)`` / ``raise AssertionError(...)`` — use
      :class:`repro.errors.ParameterError` (which still *is* a
      ``ValueError``) or a more specific ``ReproError`` subclass;
    * ``assert`` statements — validate with an explicit raise.

    Exempt: ``repro/errors.py`` (defines the hierarchy) and the
    deliberately standalone packages ``repro.obs`` / ``repro.analysis``,
    which must stay importable with zero intra-repo dependencies.

    Example violation::

        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")   # R5

    Fix::

        if width < 1:
            raise ParameterError(f"width must be >= 1, got {width}")
    """

    rule_id = "R5"
    title = "library errors derive from repro.errors"

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.role not in (Role.KERNEL, Role.LIBRARY):
            return False
        if ctx.subpackage in STANDALONE_PACKAGES:
            return False
        return not (ctx.subpackage == "" and ctx.module_name == "errors.py")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assert):
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    "assert used for validation in library code (vanishes "
                    "under python -O); raise a repro.errors type instead",
                )
                continue
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            name: str | None = None
            if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
                name = exc.func.id
            elif isinstance(exc, ast.Name):
                name = exc.id
            if name in BANNED_EXCEPTIONS:
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"bare {name} raised from library code; use "
                    "repro.errors.ParameterError (or a ReproError subclass)",
                )
