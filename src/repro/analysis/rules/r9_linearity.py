"""R9 — interprocedural linearity contract for sketch counter state."""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from ..context import Role
from ..findings import Finding
from ..flow.callgraph import FunctionNode, _expr_name
from ..registry import Rule, register

if TYPE_CHECKING:
    from ..flow.project import ProjectContext

#: Attributes holding sketch counter state (the frequency-vector projection).
COUNTER_ATTRS = frozenset({"_counters", "_levels"})

#: The sanctioned mutation primitives: the linear update/merge algebra.
SANCTIONED = frozenset(
    {
        "update_coalesced",
        "_apply_point_masses",
        "merge_sketch_state",
        "subtract_frequencies",
        # Storage rebind for the shared-memory seam: moves the counters
        # between buffers bit-for-bit, never changes their values.
        "attach_counters",
    }
)

#: Calls whose result is a *fresh* sketch the caller exclusively owns;
#: initialising a fresh object's counters is construction, not mutation.
FRESH_FACTORIES = frozenset(
    {
        "create_sketch",
        "copy",
        "merged_with",
        "level_sketch",
        "sketch_from_spec",
        "sketch_from_state",
        "sketch_of",
    }
)

#: Identifier substrings marking a receiver as sketch-like.
_SKETCHY_NAMES = ("sketch", "synopsis", "shard")

#: Roles whose code can reach live sketches (tests are exempt by policy).
_CHECKED_ROLES = frozenset({Role.KERNEL, Role.LIBRARY, Role.SCRIPT})


@register
class LinearityContract(Rule):
    """Sketch counter state may only change through the linear algebra.

    The paper's correctness story rests on sketches being *linear*
    projections of the stream's frequency vector: estimates are unbiased
    and shard/merge parallelism is exact only if every counter mutation
    flows through the sanctioned primitives (``update_coalesced``,
    ``_apply_point_masses``, ``merge_sketch_state``,
    ``subtract_frequencies``).  This pass walks the *project-wide* call
    graph and flags any write to a sketch's counter arrays
    (``_counters`` / ``_levels``) outside those primitives — even when
    the write hides two calls away from the public API.

    Writes inside ``__init__`` and writes to freshly-constructed local
    sketches (``result = HashSketch(schema); result._counters = ...``)
    are construction, not mutation, and are exempt.

    Example violation::

        def rebalance(sketch):
            sketch._counters[0] *= 0.5       # R9: breaks linearity

    Fix: express the change as a linear operation, e.g.::

        sketch.subtract_frequencies(values, frequencies)
    """

    rule_id = "R9"
    title = "counter mutations must flow through sanctioned primitives"
    scope = "project"

    def check_project(self, project: "ProjectContext") -> Iterator[Finding]:
        graph = project.graph
        for fn in sorted(
            project.functions(roles=_CHECKED_ROLES), key=lambda f: f.qualname
        ):
            if fn.name in SANCTIONED or fn.name == "__init__":
                continue
            for write in _counter_writes(fn):
                path = graph.call_path_to(fn.qualname)
                yield Finding(
                    self.rule_id,
                    fn.path,
                    write.lineno,
                    write.col_offset,
                    f"sketch counter state `{write.attr}` mutated in "
                    f"{fn.qualname} outside the sanctioned primitives "
                    f"(call path: {' -> '.join(path)}); route the change "
                    "through update_coalesced / _apply_point_masses / "
                    "merge_sketch_state / subtract_frequencies",
                )


def classify_purity(project: "ProjectContext") -> dict[str, str]:
    """Classify every function w.r.t. sketch counter state.

    ``sanctioned`` — one of the linear mutation primitives;
    ``mutates-counters`` — writes counter state directly (exemptions
    applied); ``calls-mutator`` — reaches a mutator or a sanctioned
    primitive through the call graph; ``pure`` — provably never touches
    counter state.  Surfaced via the CLI's ``--graph-out`` dump.
    """
    graph = project.graph
    direct: set[str] = set()
    sanctioned: set[str] = set()
    for fn in graph.functions.values():
        if fn.name in SANCTIONED:
            sanctioned.add(fn.qualname)
        elif fn.name != "__init__" and any(True for _ in _counter_writes(fn)):
            direct.add(fn.qualname)
    # Reverse closure: everything that can reach a mutation.
    reaches: set[str] = set()
    frontier = list(direct | sanctioned)
    while frontier:
        current = frontier.pop()
        for caller in graph.reverse.get(current, ()):
            if caller not in reaches:
                reaches.add(caller)
                frontier.append(caller)
    out: dict[str, str] = {}
    for qualname in graph.functions:
        if qualname in sanctioned:
            out[qualname] = "sanctioned"
        elif qualname in direct:
            out[qualname] = "mutates-counters"
        elif qualname in reaches:
            out[qualname] = "calls-mutator"
        else:
            out[qualname] = "pure"
    return out


class _Write:
    """One offending counter write site."""

    __slots__ = ("lineno", "col_offset", "attr")

    def __init__(self, node: ast.AST, attr: str) -> None:
        self.lineno = getattr(node, "lineno", 1)
        self.col_offset = getattr(node, "col_offset", 0)
        self.attr = attr


def _counter_writes(fn: FunctionNode) -> Iterator[_Write]:
    """Non-exempt writes to counter attributes lexically inside ``fn``."""
    fresh: set[str] = set()
    for node in _ordered(fn.node):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            attr_node = _counter_attr(target)
            if attr_node is None:
                continue
            receiver = attr_node.value
            if _is_fresh(receiver, fresh):
                continue
            if not _sketch_like(receiver, fn):
                continue
            yield _Write(attr_node, attr_node.attr)
        if isinstance(node, ast.Assign):
            _track_freshness(node, fresh)


def _ordered(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Pre-order lexical traversal of ``fn``'s body, skipping nested defs
    (they are their own :class:`FunctionNode` and checked separately)."""
    stack: list[ast.AST] = list(reversed(fn.body))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield node
        stack.extend(reversed(list(ast.iter_child_nodes(node))))


def _counter_attr(target: ast.expr) -> ast.Attribute | None:
    """The counter :class:`ast.Attribute` a store target hits, if any.

    Handles both rebinding (``x._counters = ...``) and element stores
    (``x._counters[i, j] += ...`` via any subscript depth).
    """
    node = target
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute) and node.attr in COUNTER_ATTRS:
        return node
    return None


def _track_freshness(node: ast.Assign, fresh: set[str]) -> None:
    """Maintain the set of locals bound to freshly-constructed sketches."""
    value = node.value
    is_fresh_value = False
    if isinstance(value, ast.Call):
        name = _callee_bare_name(value) or ""
        is_fresh_value = name in FRESH_FACTORIES or name.endswith("Sketch")
    for target in node.targets:
        if isinstance(target, ast.Name):
            if is_fresh_value:
                fresh.add(target.id)
            else:
                fresh.discard(target.id)


def _callee_bare_name(call: ast.Call) -> str | None:
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def _is_fresh(receiver: ast.expr, fresh: set[str]) -> bool:
    return isinstance(receiver, ast.Name) and receiver.id in fresh


def _sketch_like(receiver: ast.expr, fn: FunctionNode) -> bool:
    """Whether ``receiver`` plausibly holds live sketch state.

    ``self`` counts only inside ``*Sketch`` classes (so unrelated
    ``_counters`` attributes — e.g. a telemetry counter registry — never
    fire); names count when a parameter annotation mentions ``Sketch``
    or the identifier itself reads sketch-like."""
    if isinstance(receiver, ast.Name) and receiver.id in ("self", "cls"):
        return fn.class_name is not None and "Sketch" in fn.class_name
    if isinstance(receiver, ast.Name):
        annotation = _param_annotation(fn, receiver.id)
        if annotation is not None and "Sketch" in ast.dump(annotation):
            return True
    dotted = _expr_name(receiver)
    if dotted is not None:
        lowered = dotted.lower()
        return any(marker in lowered for marker in _SKETCHY_NAMES)
    return False


def _param_annotation(fn: FunctionNode, name: str) -> ast.expr | None:
    args = fn.node.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if arg.arg == name:
            return arg.annotation
    return None
