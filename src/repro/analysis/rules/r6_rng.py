"""R6 — every RNG in library code is explicitly seeded."""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import NUMPY_ALIASES
from ..context import FileContext, Role
from ..findings import Finding
from ..registry import Rule, register


def _is_default_rng(func: ast.expr) -> bool:
    """Matches ``np.random.default_rng`` / ``numpy.random.default_rng``
    and a bare ``default_rng`` imported from ``numpy.random``."""
    if isinstance(func, ast.Name):
        return func.id == "default_rng"
    if isinstance(func, ast.Attribute) and func.attr == "default_rng":
        value = func.value
        return (
            isinstance(value, ast.Attribute)
            and value.attr == "random"
            and isinstance(value.value, ast.Name)
            and value.value.id in NUMPY_ALIASES
        )
    return False


@register
class SeededRng(Rule):
    """``np.random.default_rng()`` without a seed is banned in ``src/``.

    Sketch accuracy experiments, golden tests, and the distributed
    protocol all depend on reproducible randomness: schemas derive every
    hash/sign family from one seed, and generators take explicit seeds.
    An unseeded ``default_rng()`` draws OS entropy, making runs
    unrepeatable and join estimates impossible to debug after the fact.

    Flags calls to ``default_rng`` with no arguments (or an explicit
    ``None`` seed) anywhere under ``src/repro``.

    Example violation::

        rng = np.random.default_rng()            # R6

    Fix: accept a ``seed`` (or ``rng``) parameter and pass it through::

        rng = np.random.default_rng(seed)
    """

    rule_id = "R6"
    title = "RNGs constructed with explicit seeds"

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.role in (Role.KERNEL, Role.LIBRARY)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not _is_default_rng(node.func):
                continue
            seeded = bool(node.args) or bool(node.keywords)
            if node.args and isinstance(node.args[0], ast.Constant):
                if node.args[0].value is None:
                    seeded = False
            if not seeded:
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    "np.random.default_rng() without an explicit seed makes "
                    "runs unreproducible; thread a seed argument through",
                )
