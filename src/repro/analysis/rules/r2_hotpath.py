"""R2 — hot-path purity: no Python-level per-element work in kernels."""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..astutil import NUMPY_ALIASES, annotation_mentions, is_numpy_attr
from ..context import FileContext, Role
from ..findings import Finding
from ..registry import Rule, register

#: Function names treated as hot paths (paper: update cost is O(depth),
#: estimation must be a vectorised pass).
HOT_NAME_RE = re.compile(r"^_?(update|ingest|est|skim|heavy|point_|all_point)")

#: numpy module-level callables that return ndarrays — used to infer
#: which local expressions are arrays.
ARRAY_FACTORIES = frozenset(
    {
        "asarray",
        "array",
        "atleast_1d",
        "arange",
        "zeros",
        "ones",
        "empty",
        "full",
        "zeros_like",
        "ones_like",
        "empty_like",
        "full_like",
        "flatnonzero",
        "nonzero",
        "where",
        "unique",
        "sort",
        "argsort",
        "concatenate",
        "bincount",
        "cumsum",
        "diff",
        "repeat",
        "tile",
        "abs",
        "sqrt",
        "median",
        "sign",
        "minimum",
        "maximum",
        "einsum",
        "broadcast_to",
    }
)

#: Annotation substrings that mark a parameter/variable as an ndarray.
ARRAY_ANNOTATIONS = frozenset({"ndarray", "NDArray"})


def _is_hot(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    return HOT_NAME_RE.match(func.name) is not None


class _ArrayTracker:
    """Best-effort inference of which expressions are ndarrays.

    Tracks names bound from numpy factory calls or annotated as arrays;
    subscripts, array methods and arithmetic on arrays stay arrays.  This
    is a linter heuristic, not a type system — precision only needs to be
    good enough to catch ``for x in arr`` shapes.
    """

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.array_names: set[str] = set()
        args = func.args
        for arg in [
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
            *([args.vararg] if args.vararg else []),
            *([args.kwarg] if args.kwarg else []),
        ]:
            if annotation_mentions(arg.annotation, ARRAY_ANNOTATIONS):
                self.array_names.add(arg.arg)
        # Two passes over simple assignments so later rebindings count.
        for _ in range(2):
            for node in ast.walk(func):
                targets: list[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets = node.targets
                    value: ast.expr | None = node.value
                elif isinstance(node, ast.AnnAssign):
                    targets = [node.target]
                    value = node.value
                    if annotation_mentions(node.annotation, ARRAY_ANNOTATIONS):
                        if isinstance(node.target, ast.Name):
                            self.array_names.add(node.target.id)
                else:
                    continue
                if value is not None and self.is_array(value):
                    for target in targets:
                        if isinstance(target, ast.Name):
                            self.array_names.add(target.id)

    def is_array(self, node: ast.expr) -> bool:
        """Heuristic: does ``node`` evaluate to an ndarray?"""
        if isinstance(node, ast.Name):
            return node.id in self.array_names
        if isinstance(node, ast.Subscript):
            return self.is_array(node.value)
        if isinstance(node, ast.BinOp):
            return self.is_array(node.left) or self.is_array(node.right)
        if isinstance(node, ast.UnaryOp):
            return self.is_array(node.operand)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                if is_numpy_attr(func, ARRAY_FACTORIES):
                    return True
                # Array method returning an array: arr.copy(), arr.astype(...)
                if func.attr != "tolist" and self.is_array(func.value):
                    return True
            return False
        return False

    def iterates_array(self, iterable: ast.expr) -> bool:
        """Does a ``for``/comprehension over ``iterable`` walk an ndarray?"""
        if self.is_array(iterable):
            return True
        if isinstance(iterable, ast.Call) and isinstance(iterable.func, ast.Name):
            if iterable.func.id in {"zip", "enumerate", "reversed", "sorted", "list"}:
                return any(self.iterates_array(arg) for arg in iterable.args)
        return False


@register
class HotPathPurity(Rule):
    """Kernel update/estimate paths must stay vectorised.

    The paper's headline guarantee is ``O(depth)`` per-element update cost
    and one vectorised pass per estimate; in this repo that translates to
    *numpy kernels with no Python-level per-element iteration*.  Inside
    hot functions (names starting with ``update``/``ingest``/``est``/
    ``skim``/``heavy``/``point_``/``all_point``) of kernel modules this
    rule flags:

    * ``for`` loops and comprehensions that iterate over an ndarray
      (directly, via ``zip``/``enumerate``, or via a slice of one);
    * ``.tolist()`` — materialises an array into a Python list;
    * per-element ``point_estimate`` calls inside a loop — use the
      vectorised ``point_estimates`` instead.

    Loops over ``range(...)`` (e.g. one iteration per hash table) are
    fine: they are O(depth), not O(elements).

    Example violation::

        def update_bulk(self, values: np.ndarray) -> None:
            for v in values:                     # R2
                self.update(int(v))

    Fix: use the vectorised kernel (``buckets``/``signs`` evaluate whole
    value vectors; ``np.bincount`` folds them into counters).
    """

    rule_id = "R2"
    title = "no per-element Python loops in kernel hot paths"

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.role is Role.KERNEL

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _is_hot(func):
                continue
            yield from self._check_function(ctx, func)

    def _check_function(
        self, ctx: FileContext, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        tracker = _ArrayTracker(func)
        loop_depth = 0

        def visit(node: ast.AST) -> Iterator[Finding]:
            nonlocal loop_depth
            entered_loop = False
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not func:
                return  # nested defs get their own hot/cold decision
            if isinstance(node, ast.For) and tracker.iterates_array(node.iter):
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    "Python for-loop over an ndarray in a kernel hot path "
                    "(vectorise with numpy instead)",
                )
            if isinstance(node, ast.comprehension) and tracker.iterates_array(node.iter):
                yield self.finding(
                    ctx,
                    node.iter.lineno,
                    node.iter.col_offset,
                    "comprehension over an ndarray in a kernel hot path "
                    "(vectorise with numpy instead)",
                )
            if isinstance(
                node,
                (ast.For, ast.While, ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp),
            ):
                entered_loop = True
                loop_depth += 1
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr == "tolist":
                    yield self.finding(
                        ctx,
                        node.lineno,
                        node.col_offset,
                        ".tolist() in a kernel hot path materialises the "
                        "array into a Python list",
                    )
                if node.func.attr == "point_estimate" and loop_depth > 0:
                    yield self.finding(
                        ctx,
                        node.lineno,
                        node.col_offset,
                        "per-element point_estimate inside a loop; use the "
                        "vectorised point_estimates",
                    )
            for child in ast.iter_child_nodes(node):
                yield from visit(child)
            if entered_loop:
                loop_depth -= 1

        for child in ast.iter_child_nodes(func):
            yield from visit(child)


__all__ = ["HotPathPurity", "HOT_NAME_RE", "ARRAY_FACTORIES", "NUMPY_ALIASES"]
