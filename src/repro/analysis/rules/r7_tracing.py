"""R7 — span recording must sit behind the ``TRACER.enabled`` flag."""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..context import FileContext, Role
from ..findings import Finding
from ..registry import Rule, register

#: The conventional names the process-wide tracer is imported under.
TRACER_NAME_RE = re.compile(r"^_?TRACER$")

#: Tracer methods that record.  Administrative methods (enable/disable/
#: reset/snapshot/spans/find/children_of) are free to call.
RECORDING_METHODS = frozenset({"span", "instant"})


def _is_tracer_name(node: ast.expr) -> bool:
    return isinstance(node, ast.Name) and TRACER_NAME_RE.match(node.id) is not None


def _mentions_enabled(test: ast.expr) -> bool:
    """Does ``test`` read ``<TRACER>.enabled``?"""
    for node in ast.walk(test):
        if (
            isinstance(node, ast.Attribute)
            and node.attr == "enabled"
            and _is_tracer_name(node.value)
        ):
            return True
    return False


def _is_guard_return(stmt: ast.stmt) -> bool:
    """``if not TRACER.enabled: return`` (early-exit guard) detection."""
    if not isinstance(stmt, ast.If) or not _mentions_enabled(stmt.test):
        return False
    return any(isinstance(s, (ast.Return, ast.Raise)) for s in stmt.body)


@register
class GuardedTracing(Rule):
    """Every ``_TRACER`` recording call must be guarded by ``.enabled``.

    The query-path tracer makes the same promise the metrics registry
    does: *disabled* instrumentation costs one attribute read and one
    branch per call site.  (The tracer's methods do self-guard, but an
    unguarded call still pays argument construction and a function call
    on the hot path — the rule keeps the guarantee lexical, exactly as
    R3 does for ``_METRICS``.)  Accepted guard shapes::

        if _TRACER.enabled:
            _TRACER.instant("sketch.update", tables=depth)

        with _TRACER.span("skim", kind="flat") if _TRACER.enabled \\
                else nullcontext():
            ...

        def _record(...):
            if not _TRACER.enabled:
                return          # early-exit guard; rest of body is guarded
            _TRACER.instant(...)

    Example violation::

        with _TRACER.span("engine.answer"):    # R7 (no guard in sight)
    """

    rule_id = "R7"
    title = "span recording guarded by the enabled flag"

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.role in (Role.KERNEL, Role.LIBRARY)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        yield from self._visit_block(ctx, list(ast.iter_child_nodes(ctx.tree)), False)

    def _visit_block(
        self, ctx: FileContext, nodes: list[ast.AST], guarded: bool
    ) -> Iterator[Finding]:
        for node in nodes:
            yield from self._visit(ctx, node, guarded)

    def _visit(self, ctx: FileContext, node: ast.AST, guarded: bool) -> Iterator[Finding]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A guard outside the def does not guard calls made later.
            body_guarded = False
            for stmt in node.body:
                yield from self._visit(ctx, stmt, body_guarded)
                if not body_guarded and _is_guard_return(stmt):
                    body_guarded = True
            return
        if isinstance(node, ast.If):
            branch_guarded = guarded or _mentions_enabled(node.test)
            yield from self._visit(ctx, node.test, guarded)
            yield from self._visit_block(ctx, list(node.body), branch_guarded)
            yield from self._visit_block(ctx, list(node.orelse), branch_guarded)
            return
        if isinstance(node, ast.IfExp):
            branch_guarded = guarded or _mentions_enabled(node.test)
            yield from self._visit(ctx, node.test, guarded)
            yield from self._visit(ctx, node.body, branch_guarded)
            yield from self._visit(ctx, node.orelse, branch_guarded)
            return
        if (
            not guarded
            and isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in RECORDING_METHODS
            and _is_tracer_name(node.func.value)
        ):
            yield self.finding(
                ctx,
                node.lineno,
                node.col_offset,
                f"unguarded _TRACER.{node.func.attr}(...) — wrap in "
                "'if _TRACER.enabled:' so disabled tracing stays free",
            )
            # fall through: nested calls in arguments are reported too
        yield from self._visit_block(ctx, list(ast.iter_child_nodes(node)), guarded)
