"""The built-in rule set (importing this package registers every rule)."""

from __future__ import annotations

from . import (  # noqa: F401  (imported for their registration side effect)
    r1_dtype,
    r2_hotpath,
    r3_telemetry,
    r4_randomness,
    r5_errors,
    r6_rng,
    r7_tracing,
    r8_audit,
    r9_linearity,
    r10_concurrency,
    r11_dtypeflow,
    r12_profiling,
    r13_federation,
)

__all__ = [
    "r1_dtype",
    "r2_hotpath",
    "r3_telemetry",
    "r4_randomness",
    "r5_errors",
    "r6_rng",
    "r7_tracing",
    "r8_audit",
    "r9_linearity",
    "r10_concurrency",
    "r11_dtypeflow",
    "r12_profiling",
    "r13_federation",
]
