"""R8 — audit recording must sit behind the ``AUDIT.enabled`` flag."""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..context import FileContext, Role
from ..findings import Finding
from ..registry import Rule, register

#: The conventional names the process-wide audit log is imported under.
AUDIT_NAME_RE = re.compile(r"^_?AUDIT$")

#: AuditLog methods that record.  Administrative methods (enable/disable/
#: reset/snapshot/audits/last/recent/write_jsonl/...) are free to call.
RECORDING_METHODS = frozenset({"record", "annotate_last", "alert"})


def _is_audit_name(node: ast.expr) -> bool:
    return isinstance(node, ast.Name) and AUDIT_NAME_RE.match(node.id) is not None


def _mentions_enabled(test: ast.expr) -> bool:
    """Does ``test`` read ``<AUDIT>.enabled``?"""
    for node in ast.walk(test):
        if (
            isinstance(node, ast.Attribute)
            and node.attr == "enabled"
            and _is_audit_name(node.value)
        ):
            return True
    return False


def _is_guard_return(stmt: ast.stmt) -> bool:
    """``if not AUDIT.enabled: return`` (early-exit guard) detection."""
    if not isinstance(stmt, ast.If) or not _mentions_enabled(stmt.test):
        return False
    return any(isinstance(s, (ast.Return, ast.Raise)) for s in stmt.body)


@register
class GuardedAuditing(Rule):
    """Every ``_AUDIT`` recording call must be guarded by ``.enabled``.

    Estimate-quality audits are the most expensive telemetry layer in the
    repo — recording one runs residual-norm domain scans and (through the
    engine) whole skims.  The contract is therefore the same lexical one
    R3 makes for ``_METRICS`` and R7 for ``_TRACER``: with auditing
    *disabled*, a query path pays exactly one attribute read and one
    branch.  Accepted guard shapes::

        if _AUDIT.enabled:
            _AUDIT.record(audit)

        def _emit(...):
            if not _AUDIT.enabled:
                return          # early-exit guard; rest of body is guarded
            _AUDIT.annotate_last(n_f=n_f)

    Example violation::

        _AUDIT.record(audit)       # R8 (no guard in sight)
    """

    rule_id = "R8"
    title = "audit recording guarded by the enabled flag"

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.role in (Role.KERNEL, Role.LIBRARY)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        yield from self._visit_block(ctx, list(ast.iter_child_nodes(ctx.tree)), False)

    def _visit_block(
        self, ctx: FileContext, nodes: list[ast.AST], guarded: bool
    ) -> Iterator[Finding]:
        for node in nodes:
            yield from self._visit(ctx, node, guarded)

    def _visit(self, ctx: FileContext, node: ast.AST, guarded: bool) -> Iterator[Finding]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A guard outside the def does not guard calls made later.
            body_guarded = False
            for stmt in node.body:
                yield from self._visit(ctx, stmt, body_guarded)
                if not body_guarded and _is_guard_return(stmt):
                    body_guarded = True
            return
        if isinstance(node, ast.If):
            branch_guarded = guarded or _mentions_enabled(node.test)
            yield from self._visit(ctx, node.test, guarded)
            yield from self._visit_block(ctx, list(node.body), branch_guarded)
            yield from self._visit_block(ctx, list(node.orelse), branch_guarded)
            return
        if isinstance(node, ast.IfExp):
            branch_guarded = guarded or _mentions_enabled(node.test)
            yield from self._visit(ctx, node.test, guarded)
            yield from self._visit(ctx, node.body, branch_guarded)
            yield from self._visit(ctx, node.orelse, branch_guarded)
            return
        if (
            not guarded
            and isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in RECORDING_METHODS
            and _is_audit_name(node.func.value)
        ):
            yield self.finding(
                ctx,
                node.lineno,
                node.col_offset,
                f"unguarded _AUDIT.{node.func.attr}(...) — wrap in "
                "'if _AUDIT.enabled:' so disabled auditing stays free",
            )
            # fall through: nested calls in arguments are reported too
        yield from self._visit_block(ctx, list(ast.iter_child_nodes(node)), guarded)
