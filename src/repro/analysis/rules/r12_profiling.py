"""R12 — profiler hooks must sit behind their own ``.enabled`` flag."""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..context import FileContext, Role
from ..findings import Finding
from ..registry import Rule, register

#: The conventional names the process-wide profiler singletons are
#: imported under (``from ..profile import PROFILER as _PROFILER``).
PROFILE_NAME_RE = re.compile(r"^_?(PROFILER|RECORDER)$")

#: Singleton methods that record on the hot path.  Administrative
#: methods (enable/disable/start/stop/reset/snapshot/tick/sample_once)
#: are free to call — they run at setup/teardown, not per element.
RECORDING_METHODS = frozenset({"mark", "pulse"})


def _is_profile_name(node: ast.expr) -> bool:
    return isinstance(node, ast.Name) and PROFILE_NAME_RE.match(node.id) is not None


def _enabled_names(test: ast.expr) -> frozenset[str]:
    """Profiler-singleton names whose ``.enabled`` flag ``test`` reads."""
    names = set()
    for node in ast.walk(test):
        if (
            isinstance(node, ast.Attribute)
            and node.attr == "enabled"
            and _is_profile_name(node.value)
        ):
            names.add(node.value.id)
    return frozenset(names)


def _guard_return_names(stmt: ast.stmt) -> frozenset[str]:
    """Names guarded by ``if not X.enabled: return`` early exits."""
    if not isinstance(stmt, ast.If):
        return frozenset()
    if not any(isinstance(s, (ast.Return, ast.Raise)) for s in stmt.body):
        return frozenset()
    return _enabled_names(stmt.test)


@register
class GuardedProfiling(Rule):
    """Every ``_PROFILER``/``_RECORDER`` hook must be guarded by ``.enabled``.

    The continuous profiler makes the same promise the metrics registry
    (R3) and tracer (R7) do: *disabled* instrumentation costs one
    attribute read and one branch per call site.  ``mark``/``pulse``
    self-guard internally, but an unguarded call still pays argument
    construction and a function call on the hot path.  The guard is
    **per singleton** — ``_PROFILER.enabled`` does not excuse a
    ``_RECORDER.pulse``; the two are enabled independently.  Accepted
    shapes::

        if _PROFILER.enabled:
            _PROFILER.mark("engine.ingest")

        if _RECORDER.enabled:
            _RECORDER.pulse("ingest.elements", kept)

        def _hook(...):
            if not _RECORDER.enabled:
                return          # early-exit guard; rest of body is guarded
            _RECORDER.pulse(...)

    Example violation::

        _PROFILER.mark("engine.ingest")          # R12 (no guard in sight)
        if _PROFILER.enabled:
            _RECORDER.pulse("queries")           # R12 (wrong singleton)
    """

    rule_id = "R12"
    title = "profiler hooks guarded by their own enabled flag"

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.role in (Role.KERNEL, Role.LIBRARY)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        yield from self._visit_block(
            ctx, list(ast.iter_child_nodes(ctx.tree)), frozenset()
        )

    def _visit_block(
        self, ctx: FileContext, nodes: list[ast.AST], guarded: frozenset[str]
    ) -> Iterator[Finding]:
        for node in nodes:
            yield from self._visit(ctx, node, guarded)

    def _visit(
        self, ctx: FileContext, node: ast.AST, guarded: frozenset[str]
    ) -> Iterator[Finding]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A guard outside the def does not guard calls made later.
            body_guarded: frozenset[str] = frozenset()
            for stmt in node.body:
                yield from self._visit(ctx, stmt, body_guarded)
                body_guarded = body_guarded | _guard_return_names(stmt)
            return
        if isinstance(node, ast.If):
            branch_guarded = guarded | _enabled_names(node.test)
            yield from self._visit(ctx, node.test, guarded)
            yield from self._visit_block(ctx, list(node.body), branch_guarded)
            yield from self._visit_block(ctx, list(node.orelse), guarded)
            return
        if isinstance(node, ast.IfExp):
            branch_guarded = guarded | _enabled_names(node.test)
            yield from self._visit(ctx, node.test, guarded)
            yield from self._visit(ctx, node.body, branch_guarded)
            yield from self._visit(ctx, node.orelse, guarded)
            return
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in RECORDING_METHODS
            and _is_profile_name(node.func.value)
            and node.func.value.id not in guarded
        ):
            yield self.finding(
                ctx,
                node.lineno,
                node.col_offset,
                f"unguarded {node.func.value.id}.{node.func.attr}(...) — wrap "
                f"in 'if {node.func.value.id}.enabled:' so disabled "
                "profiling stays free",
            )
            # fall through: nested calls in arguments are reported too
        yield from self._visit_block(ctx, list(ast.iter_child_nodes(node)), guarded)
