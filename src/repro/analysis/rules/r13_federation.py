"""R13 — telemetry snapshot capture must sit behind a singleton's enabled flag."""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..context import FileContext, Role
from ..findings import Finding
from ..registry import Rule, register

#: The conventional names the process-wide observability singletons are
#: imported under.  A guard on ANY of them makes a capture call cheap in
#: the all-disabled case, which is the invariant this rule protects.
SINGLETON_NAME_RE = re.compile(r"^_?(METRICS|TRACER|RECORDER|PROFILER|AUDIT)$")

#: Methods that serialize a :class:`~repro.federate.TelemetrySnapshot`
#: for piggybacking on a protocol message.  Capturing walks every
#: counter, gauge, histogram reservoir and the span ring — far too
#: expensive to run per round when all telemetry is off.
CAPTURE_METHODS = frozenset({"capture_telemetry"})


def _is_singleton_name(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Name)
        and SINGLETON_NAME_RE.match(node.id) is not None
    )


def _mentions_enabled(test: ast.expr) -> bool:
    """Does ``test`` read ``<SINGLETON>.enabled`` for any known singleton?"""
    for node in ast.walk(test):
        if (
            isinstance(node, ast.Attribute)
            and node.attr == "enabled"
            and _is_singleton_name(node.value)
        ):
            return True
    return False


def _is_guard_return(stmt: ast.stmt) -> bool:
    """``if not <SINGLETON>.enabled: return/raise`` early-exit detection."""
    if not isinstance(stmt, ast.If) or not _mentions_enabled(stmt.test):
        return False
    return any(isinstance(s, (ast.Return, ast.Raise)) for s in stmt.body)


def _is_capture_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr in CAPTURE_METHODS
    if isinstance(func, ast.Name):
        return func.id in CAPTURE_METHODS
    return False


@register
class GuardedFederation(Rule):
    """``capture_telemetry()`` must be guarded by a singleton's ``enabled``.

    The federation plane piggybacks telemetry snapshots on protocol
    messages (``SketchReport.telemetry``).  Capturing a snapshot walks
    the whole metrics registry, drains the span ring, and serializes the
    result — work that must not happen on the hot report path when every
    observability singleton is off.  Any function that serializes a
    snapshot into a protocol message must therefore branch on the owning
    singleton's ``enabled`` flag first.  Accepted guard shapes::

        if _METRICS.enabled or _TRACER.enabled:
            report = replace(report, telemetry=shipper.capture_telemetry())

        def _attach(...):
            if not _METRICS.enabled:
                return          # early-exit guard; rest of body is guarded
            doc = self.shipper.capture_telemetry()

    Example violation::

        doc = shipper.capture_telemetry()      # R13 (no guard in sight)

    Suppress only where the shipper wraps a private, always-enabled
    registry (e.g. the CLI's emulated origins)::

        doc = shipper.capture_telemetry()  # repro: noqa[R13] -- private registry
    """

    rule_id = "R13"
    title = "telemetry snapshot capture guarded by an enabled flag"

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.role in (Role.KERNEL, Role.LIBRARY)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        yield from self._visit_block(ctx, list(ast.iter_child_nodes(ctx.tree)), False)

    def _visit_block(
        self, ctx: FileContext, nodes: list[ast.AST], guarded: bool
    ) -> Iterator[Finding]:
        for node in nodes:
            yield from self._visit(ctx, node, guarded)

    def _visit(self, ctx: FileContext, node: ast.AST, guarded: bool) -> Iterator[Finding]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A guard outside the def does not guard calls made later.
            body_guarded = False
            for stmt in node.body:
                yield from self._visit(ctx, stmt, body_guarded)
                if not body_guarded and _is_guard_return(stmt):
                    body_guarded = True
            return
        if isinstance(node, ast.If):
            branch_guarded = guarded or _mentions_enabled(node.test)
            yield from self._visit(ctx, node.test, guarded)
            yield from self._visit_block(ctx, list(node.body), branch_guarded)
            yield from self._visit_block(ctx, list(node.orelse), branch_guarded)
            return
        if isinstance(node, ast.IfExp):
            branch_guarded = guarded or _mentions_enabled(node.test)
            yield from self._visit(ctx, node.test, guarded)
            yield from self._visit(ctx, node.body, branch_guarded)
            yield from self._visit(ctx, node.orelse, branch_guarded)
            return
        if not guarded and _is_capture_call(node):
            yield self.finding(
                ctx,
                node.lineno,
                node.col_offset,
                "unguarded capture_telemetry() — branch on an observability "
                "singleton's '.enabled' flag before serializing a snapshot "
                "into a protocol message",
            )
            # fall through: nested calls in arguments are reported too
        yield from self._visit_block(ctx, list(ast.iter_child_nodes(node)), guarded)
