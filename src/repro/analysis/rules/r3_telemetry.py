"""R3 — telemetry recording must sit behind the ``METRICS.enabled`` flag."""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..context import FileContext, Role
from ..findings import Finding
from ..registry import Rule, register

#: The conventional names the process-wide registry is imported under.
METRICS_NAME_RE = re.compile(r"^_?METRICS$")

#: Registry methods that record (everything the disabled-overhead
#: guarantee is about).  Administrative methods (enable/disable/reset/
#: snapshot/metric_names/counter_value/gauge_value) are free to call.
RECORDING_METHODS = frozenset(
    {"count", "counter", "gauge", "gauge_max", "histogram", "observe", "timer"}
)


def _is_metrics_name(node: ast.expr) -> bool:
    return isinstance(node, ast.Name) and METRICS_NAME_RE.match(node.id) is not None


def _mentions_enabled(test: ast.expr) -> bool:
    """Does ``test`` read ``<METRICS>.enabled``?"""
    for node in ast.walk(test):
        if (
            isinstance(node, ast.Attribute)
            and node.attr == "enabled"
            and _is_metrics_name(node.value)
        ):
            return True
    return False


def _is_guard_return(stmt: ast.stmt) -> bool:
    """``if not METRICS.enabled: return`` (early-exit guard) detection."""
    if not isinstance(stmt, ast.If) or not _mentions_enabled(stmt.test):
        return False
    return any(isinstance(s, (ast.Return, ast.Raise)) for s in stmt.body)


@register
class GuardedTelemetry(Rule):
    """Every ``_METRICS`` recording call must be guarded by ``.enabled``.

    PR 1's observability layer promises that *disabled* instrumentation
    costs one attribute read and one branch per call site.  That only
    holds if every recording call (``count`` / ``gauge`` / ``observe`` /
    ``histogram`` / ``timer`` / ``counter``) is lexically behind a branch
    on the registry's ``enabled`` flag.  Accepted guard shapes::

        if _METRICS.enabled:
            _METRICS.count("sketch.update.elements")

        with _METRICS.timer("skim.seconds") if _METRICS.enabled \\
                else nullcontext():
            ...

        def _record(...):
            if not _METRICS.enabled:
                return          # early-exit guard; rest of body is guarded
            _METRICS.count(...)

    Example violation::

        _METRICS.count("engine.queries")       # R3 (no guard in sight)

    Suppress only where the timer's wall-clock reading is itself the
    product (e.g. printing elapsed seconds regardless of telemetry)::

        with _METRICS.timer("eval.seconds") as t:  # repro: noqa[R3]
    """

    rule_id = "R3"
    title = "metrics recording guarded by the enabled flag"

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.role in (Role.KERNEL, Role.LIBRARY)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        yield from self._visit_block(ctx, list(ast.iter_child_nodes(ctx.tree)), False)

    def _visit_block(
        self, ctx: FileContext, nodes: list[ast.AST], guarded: bool
    ) -> Iterator[Finding]:
        for node in nodes:
            yield from self._visit(ctx, node, guarded)

    def _visit(self, ctx: FileContext, node: ast.AST, guarded: bool) -> Iterator[Finding]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A guard outside the def does not guard calls made later.
            body_guarded = False
            for stmt in node.body:
                yield from self._visit(ctx, stmt, body_guarded)
                if not body_guarded and _is_guard_return(stmt):
                    body_guarded = True
            return
        if isinstance(node, ast.If):
            branch_guarded = guarded or _mentions_enabled(node.test)
            yield from self._visit(ctx, node.test, guarded)
            yield from self._visit_block(ctx, list(node.body), branch_guarded)
            yield from self._visit_block(ctx, list(node.orelse), branch_guarded)
            return
        if isinstance(node, ast.IfExp):
            branch_guarded = guarded or _mentions_enabled(node.test)
            yield from self._visit(ctx, node.test, guarded)
            yield from self._visit(ctx, node.body, branch_guarded)
            yield from self._visit(ctx, node.orelse, branch_guarded)
            return
        if (
            not guarded
            and isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in RECORDING_METHODS
            and _is_metrics_name(node.func.value)
        ):
            yield self.finding(
                ctx,
                node.lineno,
                node.col_offset,
                f"unguarded _METRICS.{node.func.attr}(...) — wrap in "
                "'if _METRICS.enabled:' so disabled telemetry stays free",
            )
            # fall through: nested calls in arguments are reported too
        yield from self._visit_block(ctx, list(ast.iter_child_nodes(node)), guarded)
