"""Rule base class and registry.

Every rule is a class decorated with :func:`register`; the decorator
instantiates it and files it under its ``rule_id``.  The rule's
*docstring* is the canonical description — :func:`catalogue` renders the
registry straight from those docstrings, so the CLI's ``--catalogue``
output can never drift from the code.
"""

from __future__ import annotations

import inspect
from typing import TYPE_CHECKING, Iterable, Iterator, Type

from .context import FileContext
from .findings import Finding

if TYPE_CHECKING:
    from .flow.project import ProjectContext


class Rule:
    """One domain invariant, checkable against a file or the whole project.

    Subclasses set ``rule_id`` (``R<n>``) and ``title`` (one line), decide
    applicability in :meth:`applies_to`, and yield :class:`Finding` objects
    from :meth:`check`.  Rules must be stateless: one instance serves every
    file.

    ``scope`` selects the execution model: ``"file"`` rules see one
    :class:`FileContext` at a time via :meth:`check`; ``"project"`` rules
    (the interprocedural passes R9–R11) see every file of the run at once
    via :meth:`check_project` and may follow calls across modules.
    Suppressions work identically for both — a finding is matched against
    the ``# repro: noqa`` comments of the file it lands in.
    """

    rule_id: str = ""
    title: str = ""
    scope: str = "file"  #: "file" or "project"

    def applies_to(self, ctx: FileContext) -> bool:
        """Whether this rule runs on ``ctx`` (default: everywhere)."""
        return True

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Yield findings for ``ctx``; must not mutate the context."""
        raise NotImplementedError

    def check_project(self, project: "ProjectContext") -> Iterable[Finding]:
        """Yield findings across ``project`` (project-scoped rules only)."""
        raise NotImplementedError

    def finding(self, ctx: FileContext, line: int, col: int, message: str) -> Finding:
        """Convenience constructor stamping this rule's id."""
        return Finding(self.rule_id, ctx.path, line, col, message)


_REGISTRY: dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate ``cls`` and add it to the registry."""
    instance = cls()
    if not instance.rule_id:
        raise RuntimeError(f"rule {cls.__name__} has no rule_id")
    if instance.rule_id in _REGISTRY:
        raise RuntimeError(f"duplicate rule id {instance.rule_id}")
    _REGISTRY[instance.rule_id] = instance
    return cls


def all_rules() -> list[Rule]:
    """Every registered rule, ordered by id."""
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def get_rules(select: Iterable[str] | None = None) -> list[Rule]:
    """Registered rules, optionally restricted to ``select`` ids.

    Raises ``KeyError`` naming the first unknown id, so the CLI can turn
    it into a usage error.
    """
    if select is None:
        return all_rules()
    chosen = []
    for rule_id in select:
        if rule_id not in _REGISTRY:
            raise KeyError(rule_id)
        chosen.append(_REGISTRY[rule_id])
    return sorted(chosen, key=lambda r: r.rule_id)


def catalogue() -> Iterator[str]:
    """Render the rule catalogue from rule docstrings, one block per rule."""
    for rule in all_rules():
        doc = inspect.cleandoc(rule.__doc__ or "(undocumented)")
        yield f"{rule.rule_id} — {rule.title}\n\n{doc}\n"
