"""``python -m repro.analysis`` dispatch."""

from __future__ import annotations

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
