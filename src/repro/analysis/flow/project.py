"""ProjectContext: everything a *project-scoped* rule needs.

The multi-file analogue of :class:`~repro.analysis.context.FileContext`:
every parsed file of the run, plus the lazily-built call graph the
interprocedural passes share (built at most once per analysis run, only
when a project rule actually executes).
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ..context import FileContext, Role
from .callgraph import CallGraph, FunctionNode


class ProjectContext:
    """All parsed files of one analysis run plus their shared call graph."""

    def __init__(self, contexts: Sequence[FileContext]) -> None:
        self.contexts: list[FileContext] = list(contexts)
        self._by_path = {ctx.path: ctx for ctx in self.contexts}
        self._graph: CallGraph | None = None

    @property
    def graph(self) -> CallGraph:
        """The project call graph (built on first access, then cached)."""
        if self._graph is None:
            self._graph = CallGraph.build(self.contexts)
        return self._graph

    def context_for(self, path: str) -> FileContext | None:
        """The file context a finding at ``path`` belongs to."""
        return self._by_path.get(path)

    def functions(self, roles: frozenset[Role] | None = None) -> Iterator[FunctionNode]:
        """Every function node, optionally restricted to files of ``roles``."""
        for fn in self.graph.functions.values():
            ctx = self._by_path.get(fn.path)
            if ctx is None:
                continue
            if roles is None or ctx.role in roles:
                yield fn
