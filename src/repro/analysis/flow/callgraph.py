"""Project-wide call graph over the analysed files (stdlib ``ast`` only).

The graph is deliberately an *approximation* tuned for soundness of the
interprocedural rules rather than precision:

* **Module-level name resolution** — ``import``/``from .. import``
  statements (including relative imports and package ``__init__``
  re-exports) are resolved to fully-qualified names, so a call to
  ``coalesce_updates`` inside ``repro.sketches.hash_sketch`` links to
  ``repro.hashing.bulk.coalesce_updates``.
* **Method dispatch via class-hierarchy approximation** — ``self.m()``
  resolves through the enclosing class and its known bases *and* known
  subclass overrides; ``obj.m()`` on an unknown receiver links to every
  known class method named ``m`` (classic CHA over-approximation).
* **Callable references as call edges** — a known function passed as an
  argument (``executor.submit(shard.update_bulk, ...)``) is treated as
  called: deferred execution must not hide a mutation from R9/R10.

Queries: :meth:`CallGraph.reachable_from` (forward closure) and
:meth:`CallGraph.call_path_to` (shortest caller chain, used by the rules
to name the offending call path in finding messages).
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from pathlib import PurePath
from typing import Iterable, Iterator

from ..context import FIXTURE_MARKER, FileContext

#: Maximum import-alias hops followed when resolving a dotted name
#: (guards against pathological re-export cycles).
_MAX_ALIAS_HOPS = 8


def module_name_for_path(path: str) -> str:
    """Dotted module name a file would import as (fixture marker stripped).

    ``src/repro/sketches/hash_sketch.py`` -> ``repro.sketches.hash_sketch``;
    ``src/repro/hashing/__init__.py`` -> ``repro.hashing``; files outside a
    ``repro`` tree fall back to their stem (tests, benchmarks, examples).
    """
    parts = list(PurePath(path).parts)
    if FIXTURE_MARKER in parts:
        parts = parts[parts.index(FIXTURE_MARKER) + 1 :]
    stem = PurePath(parts[-1]).stem if parts else ""
    if "repro" in parts[:-1]:
        rest = parts[parts.index("repro") : -1] + ([] if stem == "__init__" else [stem])
        return ".".join(rest)
    return stem


@dataclass
class FunctionNode:
    """One function or method definition in the project."""

    qualname: str  #: e.g. ``repro.sketches.hash_sketch.HashSketch.update``
    name: str  #: bare name, e.g. ``update``
    module: str
    path: str
    lineno: int
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str | None = None  #: bare name of the enclosing class
    class_qualname: str | None = None


@dataclass
class ClassNode:
    """One class definition: bases (as written) and its own methods."""

    qualname: str
    name: str
    module: str
    path: str
    lineno: int
    base_names: list[str] = field(default_factory=list)  #: unresolved, as written
    methods: dict[str, str] = field(default_factory=dict)  #: name -> fn qualname


class CallGraph:
    """Call graph built from a sequence of :class:`FileContext` objects."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionNode] = {}
        self.classes: dict[str, ClassNode] = {}
        #: module name -> {local alias -> fully-qualified target}
        self.imports: dict[str, dict[str, str]] = {}
        #: module name -> {module-level name -> qualname} (functions + classes)
        self.module_scope: dict[str, dict[str, str]] = {}
        self.edges: dict[str, set[str]] = {}
        self.reverse: dict[str, set[str]] = {}
        #: method bare name -> list of method qualnames (for CHA dispatch)
        self.methods_by_name: dict[str, list[str]] = {}
        #: class qualname -> resolved base class qualnames
        self.bases: dict[str, list[str]] = {}
        #: class qualname -> resolved direct subclass qualnames
        self.subclasses: dict[str, list[str]] = {}

    # -- construction ----------------------------------------------------------

    @classmethod
    def build(cls, contexts: Iterable[FileContext]) -> "CallGraph":
        """Collect every definition, then resolve hierarchy and call edges."""
        graph = cls()
        ordered = list(contexts)
        for ctx in ordered:
            graph._collect_module(ctx)
        graph._resolve_hierarchy()
        for ctx in ordered:
            graph._collect_edges(ctx)
        return graph

    def _collect_module(self, ctx: FileContext) -> None:
        module = module_name_for_path(ctx.path)
        is_package = PurePath(ctx.path).name == "__init__.py"
        imports = self.imports.setdefault(module, {})
        scope = self.module_scope.setdefault(module, {})
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    imports[alias.asname or alias.name.split(".")[0]] = alias.name
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(module, node, is_package)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    imports[alias.asname or alias.name] = (
                        f"{base}.{alias.name}" if base else alias.name
                    )
        self._collect_defs(ctx, module, ctx.tree, prefix=module, class_node=None)
        for name, qualname in list(scope.items()):
            imports.setdefault(name, qualname)

    @staticmethod
    def _import_base(module: str, node: ast.ImportFrom, is_package: bool) -> str:
        """Absolute module a ``from X import ...`` statement pulls from."""
        if not node.level:
            return node.module or ""
        parts = module.split(".")
        # For a plain module, level=1 strips its own name; for a package
        # (``__init__.py``), level=1 is the package itself.  Each extra
        # level climbs one more package either way.
        strip = node.level - 1 if is_package else node.level
        parts = parts[: max(len(parts) - strip, 0)]
        if node.module:
            parts.append(node.module)
        return ".".join(parts)

    def _collect_defs(
        self,
        ctx: FileContext,
        module: str,
        tree: ast.AST,
        prefix: str,
        class_node: ClassNode | None,
    ) -> None:
        for node in ast.iter_child_nodes(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}.{node.name}"
                fn = FunctionNode(
                    qualname=qualname,
                    name=node.name,
                    module=module,
                    path=ctx.path,
                    lineno=node.lineno,
                    node=node,
                    class_name=class_node.name if class_node else None,
                    class_qualname=class_node.qualname if class_node else None,
                )
                self.functions[qualname] = fn
                if class_node is not None:
                    class_node.methods[node.name] = qualname
                    self.methods_by_name.setdefault(node.name, []).append(qualname)
                elif prefix == module:
                    self.module_scope[module][node.name] = qualname
                # Nested defs become their own nodes under the parent prefix.
                self._collect_defs(ctx, module, node, qualname, class_node=None)
            elif isinstance(node, ast.ClassDef):
                qualname = f"{prefix}.{node.name}"
                cls_node = ClassNode(
                    qualname=qualname,
                    name=node.name,
                    module=module,
                    path=ctx.path,
                    lineno=node.lineno,
                    base_names=[
                        text
                        for base in node.bases
                        if (text := _expr_name(base)) is not None
                    ],
                )
                self.classes[qualname] = cls_node
                if prefix == module:
                    self.module_scope[module][node.name] = qualname
                self._collect_defs(ctx, module, node, qualname, class_node=cls_node)

    def _resolve_hierarchy(self) -> None:
        for cls_node in self.classes.values():
            resolved = []
            for base in cls_node.base_names:
                target = self.resolve_name(cls_node.module, base)
                if target in self.classes:
                    resolved.append(target)
            self.bases[cls_node.qualname] = resolved
            for base_qual in resolved:
                self.subclasses.setdefault(base_qual, []).append(cls_node.qualname)

    # -- name resolution -------------------------------------------------------

    def resolve_name(self, module: str, dotted: str) -> str | None:
        """Resolve ``dotted`` as seen from ``module`` to a known qualname.

        Follows module-scope names, import aliases, and package
        ``__init__`` re-exports (bounded hops).  Returns ``None`` for
        anything external (numpy, stdlib) or otherwise unknown.
        """
        head, _, rest = dotted.partition(".")
        aliases = self.imports.get(module, {})
        if head in aliases:
            base = aliases[head]
            candidate = f"{base}.{rest}" if rest else base
        else:
            candidate = dotted
        for _ in range(_MAX_ALIAS_HOPS):
            if candidate in self.functions or candidate in self.classes:
                return candidate
            # Maybe the prefix is a package whose __init__ re-exports the tail.
            prefix, _, tail = candidate.rpartition(".")
            if not prefix:
                return None
            hop = self.imports.get(prefix, {}).get(tail)
            if hop is None or hop == candidate:
                return None
            candidate = hop
        return None

    def _method_in_hierarchy(self, class_qual: str, method: str) -> list[str]:
        """Implementations ``method`` could dispatch to for a ``class_qual``
        receiver: the class's own/inherited definition plus every known
        subclass override (class-hierarchy approximation)."""
        found: list[str] = []
        seen: set[str] = set()
        # Up the MRO approximation: first definition wins.
        queue = deque([class_qual])
        while queue:
            current = queue.popleft()
            if current in seen:
                continue
            seen.add(current)
            cls_node = self.classes.get(current)
            if cls_node is None:
                continue
            if method in cls_node.methods:
                found.append(cls_node.methods[method])
                break
            queue.extend(self.bases.get(current, []))
        # Down the hierarchy: subclass overrides.
        queue = deque(self.subclasses.get(class_qual, []))
        seen = set()
        while queue:
            current = queue.popleft()
            if current in seen:
                continue
            seen.add(current)
            cls_node = self.classes.get(current)
            if cls_node is not None and method in cls_node.methods:
                found.append(cls_node.methods[method])
            queue.extend(self.subclasses.get(current, []))
        return found

    def resolve_call(
        self, caller: FunctionNode, func: ast.expr
    ) -> list[str]:
        """Possible callee qualnames for a call expression inside ``caller``."""
        if isinstance(func, ast.Name):
            # Nested function of the caller first, then module scope/imports.
            nested = f"{caller.qualname}.{func.id}"
            if nested in self.functions:
                return [nested]
            target = self.resolve_name(caller.module, func.id)
            return self._expand_target(target)
        if isinstance(func, ast.Attribute):
            receiver = func.value
            if (
                isinstance(receiver, ast.Name)
                and receiver.id in ("self", "cls")
                and caller.class_qualname is not None
            ):
                return self._method_in_hierarchy(caller.class_qualname, func.attr)
            dotted = _expr_name(func)
            if dotted is not None:
                target = self.resolve_name(caller.module, dotted)
                if target is not None:
                    return self._expand_target(target)
            # Unknown receiver: CHA over every known method of that name.
            return list(self.methods_by_name.get(func.attr, []))
        return []

    def _expand_target(self, target: str | None) -> list[str]:
        if target is None:
            return []
        if target in self.functions:
            return [target]
        if target in self.classes:  # instantiation calls __init__
            init = self.classes[target].methods.get("__init__")
            return [init] if init else []
        return []

    # -- edge collection -------------------------------------------------------

    def _collect_edges(self, ctx: FileContext) -> None:
        module = module_name_for_path(ctx.path)
        for fn in [f for f in self.functions.values() if f.module == module and f.path == ctx.path]:
            callees: set[str] = set()
            for call in _own_calls(fn.node):
                callees.update(self.resolve_call(fn, call.func))
                # Known callables passed as arguments will be invoked later.
                for arg in list(call.args) + [kw.value for kw in call.keywords]:
                    if isinstance(arg, (ast.Name, ast.Attribute)):
                        callees.update(self.resolve_call(fn, arg))
            callees.discard(fn.qualname)
            self.edges[fn.qualname] = callees
            for callee in callees:
                self.reverse.setdefault(callee, set()).add(fn.qualname)

    # -- queries ---------------------------------------------------------------

    def reachable_from(self, roots: Iterable[str]) -> set[str]:
        """Forward transitive closure over call edges, roots included."""
        seen: set[str] = set()
        queue = deque(q for q in roots if q in self.functions)
        while queue:
            current = queue.popleft()
            if current in seen:
                continue
            seen.add(current)
            queue.extend(self.edges.get(current, ()))
        return seen

    def call_path_to(self, target: str, stop: frozenset[str] = frozenset()) -> list[str]:
        """Shortest caller chain ending at ``target`` (entry point first).

        Walks reverse edges breadth-first until a function with no known
        callers (or a ``stop`` function, exclusive) is reached.  Returns
        ``[target]`` when nothing calls it.
        """
        parent: dict[str, str] = {}
        queue = deque([target])
        seen = {target}
        entry = target
        while queue:
            current = queue.popleft()
            callers = [
                c
                for c in sorted(self.reverse.get(current, ()))
                if c not in stop
            ]
            if not callers:
                entry = current
                break
            for caller in callers:
                if caller not in seen:
                    seen.add(caller)
                    parent[caller] = current
                    queue.append(caller)
            entry = current  # fall back to the deepest node examined
        path = [entry]
        while path[-1] != target:
            path.append(parent[path[-1]])
        return path

    def to_dict(self, purity: dict[str, str] | None = None) -> dict[str, object]:
        """JSON-ready dump (the ``--graph-out`` schema)."""
        return {
            "version": 1,
            "functions": [
                {
                    "qualname": fn.qualname,
                    "path": fn.path,
                    "line": fn.lineno,
                    "class": fn.class_qualname,
                    **({"purity": purity[fn.qualname]} if purity and fn.qualname in purity else {}),
                }
                for fn in sorted(self.functions.values(), key=lambda f: f.qualname)
            ],
            "classes": [
                {
                    "qualname": c.qualname,
                    "path": c.path,
                    "bases": sorted(self.bases.get(c.qualname, [])),
                }
                for c in sorted(self.classes.values(), key=lambda c: c.qualname)
            ],
            "edges": sorted(
                [caller, callee]
                for caller, callees in self.edges.items()
                for callee in callees
            ),
        }


def _expr_name(node: ast.expr) -> str | None:
    """``a.b.c`` attribute/name chains as dotted text (else ``None``)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _own_calls(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.Call]:
    """Call expressions lexically inside ``fn`` but not in nested defs."""
    stack: list[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))
