"""repro.analysis.flow — whole-program dataflow infrastructure.

Everything the interprocedural rules (R9 linearity-contract, R10
concurrency-discipline, R11 kernel-dtype propagation) share:

* :mod:`.callgraph` — a project-wide call graph over ``src/repro``:
  module-level name resolution (imports, aliases, relative imports) plus
  method dispatch via a class-hierarchy approximation, with reachability
  and shortest-call-path queries so findings can name the offending call
  path;
* :mod:`.project` — :class:`ProjectContext`, the multi-file analogue of
  :class:`~repro.analysis.context.FileContext` handed to project-scoped
  rules;
* :mod:`.dtypes` — a small numpy-dtype lattice and abstract interpreter
  that propagates dtypes through locals, calls, and returns.

Like the rest of :mod:`repro.analysis`, this subpackage imports only the
standard library: it reasons *about* numpy code without importing numpy.
"""

from __future__ import annotations

from .callgraph import CallGraph, ClassNode, FunctionNode, module_name_for_path
from .dtypes import BOTTOM, DTYPES, UNKNOWN, DtypeInterpreter, join
from .project import ProjectContext

__all__ = [
    "BOTTOM",
    "CallGraph",
    "ClassNode",
    "DTYPES",
    "DtypeInterpreter",
    "FunctionNode",
    "ProjectContext",
    "UNKNOWN",
    "join",
    "module_name_for_path",
]
