"""A small numpy-dtype lattice and abstract interpreter (stdlib only).

R1 spot-checks dtypes at allocation sites; this module *propagates* them:
an abstract interpreter walks kernel function bodies tracking the dtype
of every local through assignments, arithmetic, indexing, numpy calls,
and — via call-graph-resolved summaries — through calls to other kernel
functions, so the int64-values / float64-counters invariants can be
checked at the seams where arrays actually enter the sketch algebra.

The value lattice::

            unknown                (top: absorbs everything)
           /   |    \\
    float64  uint64   ...
       |
     int64
       |
     int32
       |
     int8
       |
     bool
       \\   |   /
        bottom                     (unreached)

``join`` is commutative, associative and idempotent (property-tested);
``uint64`` joined with any signed/float dtype is ``float64`` (numpy's
promotion), with ``bool`` it stays ``uint64``.  Anything the interpreter
cannot prove becomes ``unknown``, and unknown values never produce
findings — the passes only report *provable* violations.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:
    from .callgraph import CallGraph, FunctionNode

#: Lattice bottom: no execution path reached this value yet.
BOTTOM = "bottom"
#: Lattice top: dtype not provable; never produces findings.
UNKNOWN = "unknown"
#: The concrete dtypes the lattice models (all the kernels use).
DTYPES = ("bool", "int8", "int32", "int64", "uint64", "float64")

#: Internal marker for python numeric literals/scalars: they adapt to the
#: other operand's dtype (numpy value-based casting) and are deliberately
#: *not* lattice elements — ``join`` never sees them.
_PYNUM = "pynum"

_LADDER = {"bool": 0, "int8": 1, "int32": 2, "int64": 3, "float64": 4}


def join(a: str, b: str) -> str:
    """Least upper bound of two lattice elements (see module docstring)."""
    if a == BOTTOM:
        return b
    if b == BOTTOM:
        return a
    if a == b:
        return a
    if a == UNKNOWN or b == UNKNOWN:
        return UNKNOWN
    if "uint64" in (a, b):
        other = b if a == "uint64" else a
        return "uint64" if other == "bool" else "float64"
    return a if _LADDER[a] >= _LADDER[b] else b


@dataclass(frozen=True)
class AValue:
    """An abstract value: a lattice dtype (or tuple of them) + provenance.

    ``origin`` names the call or annotation that pinned the dtype, so a
    finding two calls away can say *where* the offending dtype came from.
    """

    dtype: "str | tuple[str, ...]"
    origin: str | None = None

    def is_tuple(self) -> bool:
        """True when this value is a tuple of abstract dtypes."""
        return isinstance(self.dtype, tuple)


_UNKNOWN_VALUE = AValue(UNKNOWN)
_PYNUM_VALUE = AValue(_PYNUM)


def _scalar(value: AValue) -> str:
    """The scalar dtype of ``value`` (tuples collapse to unknown)."""
    return UNKNOWN if value.is_tuple() else str(value.dtype)


def join_values(a: AValue, b: AValue) -> AValue:
    """Pointwise join; provenance survives when the dtype does."""
    if a.dtype == BOTTOM:
        return b
    if b.dtype == BOTTOM:
        return a
    if a.is_tuple() and b.is_tuple() and len(a.dtype) == len(b.dtype):
        return AValue(tuple(join(x, y) for x, y in zip(a.dtype, b.dtype)))
    da, db = _scalar(a), _scalar(b)
    if da == _PYNUM:
        return b
    if db == _PYNUM:
        return a
    joined = join(da, db)
    origin = a.origin if joined == da else b.origin if joined == db else None
    return AValue(joined, origin)


def _combine(a: AValue, b: AValue) -> AValue:
    """Binary-arithmetic result dtype (promotion via join; pynum adapts)."""
    return join_values(a, b)


@dataclass
class CallSite:
    """One call observed during interpretation, with evaluated arguments."""

    node: ast.Call
    func_name: str  #: bare callee name (attribute or plain name)
    callees: list[str]  #: resolved callee qualnames (may be empty)
    args: list[AValue]
    keywords: dict[str, AValue]


@dataclass
class AttrWrite:
    """A plain assignment ``recv.attr = expr`` observed during interpretation."""

    node: ast.AST
    attr: str
    value: AValue
    receiver_is_self: bool


@dataclass
class Inference:
    """Everything the interpreter learned about one function body."""

    calls: list[CallSite] = field(default_factory=list)
    attr_writes: list[AttrWrite] = field(default_factory=list)
    return_value: AValue = AValue(BOTTOM)


#: Names ``numpy`` is conventionally imported as.
_NUMPY_ALIASES = frozenset({"np", "numpy"})

#: numpy factory/ufunc result dtypes keyed by bare function name.
_NP_FLOAT64 = frozenset({"median", "mean", "sqrt", "std", "var", "average"})
_NP_INT64 = frozenset({"flatnonzero", "argsort", "argmin", "argmax", "searchsorted", "count_nonzero"})
_NP_BOOL = frozenset(
    {"isfinite", "isnan", "isinf", "equal", "not_equal", "greater", "greater_equal", "less", "less_equal", "logical_and", "logical_or", "logical_not"}
)
_NP_PASSTHROUGH = frozenset({"abs", "absolute", "sort", "repeat", "sign", "negative", "ascontiguousarray", "atleast_1d", "ravel", "concatenate", "copy"})
_METHOD_PASSTHROUGH = frozenset(
    {"copy", "ravel", "reshape", "flatten", "squeeze", "transpose", "clip", "round", "sum", "min", "max", "cumsum", "prod", "item", "astype"}
)


def _dtype_from_expr(node: ast.expr | None) -> str:
    """Map a ``dtype=`` argument expression onto a lattice element."""
    if node is None:
        return UNKNOWN
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        if node.value.id in _NUMPY_ALIASES:
            name = "bool" if node.attr == "bool_" else node.attr
            return name if name in DTYPES else UNKNOWN
    if isinstance(node, ast.Name):
        return {"bool": "bool", "int": "int64", "float": "float64"}.get(
            node.id, UNKNOWN
        )
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value if node.value in DTYPES else UNKNOWN
    return UNKNOWN


class DtypeInterpreter:
    """Abstract interpreter over kernel functions with call summaries.

    ``graph`` (optional) enables interprocedural propagation: calls that
    resolve to project functions take the callee's summarised return
    dtype, computed on demand and memoised (recursion bottoms out at
    :data:`BOTTOM`, the join identity).
    """

    def __init__(self, graph: "CallGraph | None" = None) -> None:
        self._graph = graph
        self._summaries: dict[str, AValue] = {}
        self._in_progress: set[str] = set()
        self._attr_envs: dict[str, dict[str, AValue]] = {}

    # -- public API ------------------------------------------------------------

    def analyze(self, fn: "FunctionNode") -> Inference:
        """Interpret one function body and report what was observed."""
        result = Inference()
        env = self._seed_env(fn)
        self._exec_block(fn, fn.node.body, env, result)
        if result.return_value.dtype == BOTTOM:
            result.return_value = _UNKNOWN_VALUE
        return result

    def summary(self, qualname: str) -> AValue:
        """Memoised return-dtype summary for a project function."""
        if self._graph is None or qualname not in self._graph.functions:
            return _UNKNOWN_VALUE
        if qualname in self._summaries:
            return self._summaries[qualname]
        if qualname in self._in_progress:  # recursion: join identity
            return AValue(BOTTOM)
        self._in_progress.add(qualname)
        try:
            inference = self.analyze(self._graph.functions[qualname])
        finally:
            self._in_progress.discard(qualname)
        value = inference.return_value
        if value.origin is None and not value.is_tuple() and value.dtype in DTYPES:
            value = AValue(value.dtype, f"returned by {qualname}")
        self._summaries[qualname] = value
        return value

    def attr_env(self, class_qualname: str) -> dict[str, AValue]:
        """``self.<attr>`` dtypes established by the class's ``__init__``."""
        if class_qualname in self._attr_envs:
            return self._attr_envs[class_qualname]
        env: dict[str, AValue] = {}
        self._attr_envs[class_qualname] = env  # pre-bind to stop recursion
        if self._graph is not None:
            cls = self._graph.classes.get(class_qualname)
            init = cls.methods.get("__init__") if cls else None
            if init is not None:
                inference = self.analyze(self._graph.functions[init])
                for write in inference.attr_writes:
                    if write.receiver_is_self:
                        existing = env.get(write.attr, AValue(BOTTOM))
                        env[write.attr] = join_values(existing, write.value)
        return env

    # -- environment -----------------------------------------------------------

    def _seed_env(self, fn: "FunctionNode") -> dict[str, AValue]:
        env: dict[str, AValue] = {}
        args = fn.node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            env[arg.arg] = _UNKNOWN_VALUE
        return env

    # -- statement execution -----------------------------------------------------

    def _exec_block(
        self,
        fn: "FunctionNode",
        stmts: Sequence[ast.stmt],
        env: dict[str, AValue],
        result: Inference,
    ) -> None:
        for stmt in stmts:
            self._exec(fn, stmt, env, result)

    def _exec(
        self,
        fn: "FunctionNode",
        stmt: ast.stmt,
        env: dict[str, AValue],
        result: Inference,
    ) -> None:
        if isinstance(stmt, ast.Assign):
            value = self._eval(fn, stmt.value, env, result)
            for target in stmt.targets:
                self._assign(fn, target, value, env, result)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            value = self._eval(fn, stmt.value, env, result)
            self._assign(fn, stmt.target, value, env, result)
        elif isinstance(stmt, ast.AugAssign):
            value = self._eval(fn, stmt.value, env, result)
            if isinstance(stmt.target, ast.Name):
                current = env.get(stmt.target.id, _UNKNOWN_VALUE)
                env[stmt.target.id] = _combine(current, value)
            # In-place ops on attributes cannot rebind the array dtype.
        elif isinstance(stmt, (ast.If,)):
            self._eval(fn, stmt.test, env, result)
            before = dict(env)
            self._exec_block(fn, stmt.body, env, result)
            other = before
            self._exec_block(fn, stmt.orelse, other, result)
            self._merge_env(env, other)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iterated = self._eval(fn, stmt.iter, env, result)
            self._assign(fn, stmt.target, AValue(_scalar(iterated)), env, result)
            before = dict(env)
            # Two passes approximate the loop fixpoint for loop-carried vars.
            self._exec_block(fn, stmt.body, env, result)
            self._exec_block(fn, stmt.body, env, result)
            self._exec_block(fn, stmt.orelse, env, result)
            self._merge_env(env, before)
        elif isinstance(stmt, ast.While):
            self._eval(fn, stmt.test, env, result)
            before = dict(env)
            self._exec_block(fn, stmt.body, env, result)
            self._exec_block(fn, stmt.orelse, env, result)
            self._merge_env(env, before)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                value = self._eval(fn, item.context_expr, env, result)
                if item.optional_vars is not None:
                    self._assign(fn, item.optional_vars, value, env, result)
            self._exec_block(fn, stmt.body, env, result)
        elif isinstance(stmt, ast.Try):
            self._exec_block(fn, stmt.body, env, result)
            for handler in stmt.handlers:
                branch = dict(env)
                self._exec_block(fn, handler.body, branch, result)
                self._merge_env(env, branch)
            self._exec_block(fn, stmt.orelse, env, result)
            self._exec_block(fn, stmt.finalbody, env, result)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                value = self._eval(fn, stmt.value, env, result)
                result.return_value = join_values(result.return_value, value)
            else:
                result.return_value = join_values(
                    result.return_value, _UNKNOWN_VALUE
                )
        elif isinstance(stmt, ast.Expr):
            self._eval(fn, stmt.value, env, result)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(fn, child, env, result)
        # Nested defs/classes, imports, pass, etc.: no dtype effect here.

    @staticmethod
    def _merge_env(env: dict[str, AValue], other: dict[str, AValue]) -> None:
        for name in set(env) | set(other):
            env[name] = join_values(
                env.get(name, _UNKNOWN_VALUE), other.get(name, _UNKNOWN_VALUE)
            )

    def _assign(
        self,
        fn: "FunctionNode",
        target: ast.expr,
        value: AValue,
        env: dict[str, AValue],
        result: Inference,
    ) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            elements = (
                [AValue(d) for d in value.dtype]
                if value.is_tuple() and len(value.dtype) == len(target.elts)
                else [_UNKNOWN_VALUE] * len(target.elts)
            )
            for elt, elt_value in zip(target.elts, elements):
                self._assign(fn, elt, elt_value, env, result)
        elif isinstance(target, ast.Attribute):
            result.attr_writes.append(
                AttrWrite(
                    node=target,
                    attr=target.attr,
                    value=value,
                    receiver_is_self=(
                        isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ),
                )
            )
        # Subscript stores cannot rebind an array's dtype: ignored.

    # -- expression evaluation ---------------------------------------------------

    def _eval(
        self,
        fn: "FunctionNode",
        node: ast.expr,
        env: dict[str, AValue],
        result: Inference,
    ) -> AValue:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return AValue("bool")
            if isinstance(node.value, (int, float)):
                return _PYNUM_VALUE
            return _UNKNOWN_VALUE
        if isinstance(node, ast.Name):
            return env.get(node.id, _UNKNOWN_VALUE)
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                if fn.class_qualname is not None:
                    return self.attr_env(fn.class_qualname).get(
                        node.attr, _UNKNOWN_VALUE
                    )
            return _UNKNOWN_VALUE
        if isinstance(node, ast.BinOp):
            left = self._eval(fn, node.left, env, result)
            right = self._eval(fn, node.right, env, result)
            if isinstance(node.op, ast.Div):
                if UNKNOWN in (_scalar(left), _scalar(right)):
                    return _UNKNOWN_VALUE
                return AValue("float64")
            return _combine(left, right)
        if isinstance(node, ast.BoolOp):
            values = [self._eval(fn, v, env, result) for v in node.values]
            out = values[0]
            for value in values[1:]:
                out = join_values(out, value)
            return out
        if isinstance(node, ast.Compare):
            self._eval(fn, node.left, env, result)
            for comp in node.comparators:
                self._eval(fn, comp, env, result)
            return AValue("bool")
        if isinstance(node, ast.UnaryOp):
            operand = self._eval(fn, node.operand, env, result)
            return AValue("bool") if isinstance(node.op, ast.Not) else operand
        if isinstance(node, ast.Call):
            return self._eval_call(fn, node, env, result)
        if isinstance(node, ast.Subscript):
            value = self._eval(fn, node.value, env, result)
            self._eval(fn, node.slice, env, result)
            if value.is_tuple():
                if isinstance(node.slice, ast.Constant) and isinstance(
                    node.slice.value, int
                ):
                    index = node.slice.value
                    if 0 <= index < len(value.dtype):
                        return AValue(value.dtype[index], value.origin)
                return _UNKNOWN_VALUE
            return value  # indexing/masking preserves the array dtype
        if isinstance(node, ast.Tuple):
            elements = [self._eval(fn, elt, env, result) for elt in node.elts]
            return AValue(tuple(_scalar(e) for e in elements))
        if isinstance(node, ast.IfExp):
            self._eval(fn, node.test, env, result)
            return join_values(
                self._eval(fn, node.body, env, result),
                self._eval(fn, node.orelse, env, result),
            )
        if isinstance(node, (ast.List, ast.Set, ast.Dict, ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for child in ast.walk(node):
                if isinstance(child, ast.Call):
                    self._eval_call(fn, child, env, result)
            return _UNKNOWN_VALUE
        if isinstance(node, ast.Starred):
            return self._eval(fn, node.value, env, result)
        return _UNKNOWN_VALUE

    def _eval_call(
        self,
        fn: "FunctionNode",
        node: ast.Call,
        env: dict[str, AValue],
        result: Inference,
    ) -> AValue:
        args = [self._eval(fn, arg, env, result) for arg in node.args]
        keywords = {
            kw.arg: self._eval(fn, kw.value, env, result)
            for kw in node.keywords
            if kw.arg is not None
        }
        func = node.func
        value = self._builtin_or_numpy(fn, node, func, args, keywords, env, result)
        callees: list[str] = []
        func_name = ""
        if value is None:
            # Project functions via the call graph: join of callee summaries.
            if self._graph is not None:
                caller = self._graph.functions.get(fn.qualname, fn)
                callees = self._graph.resolve_call(caller, func)
            func_name = (
                func.attr
                if isinstance(func, ast.Attribute)
                else func.id if isinstance(func, ast.Name) else ""
            )
            if callees:
                value = AValue(BOTTOM)
                for callee in callees:
                    value = join_values(value, self.summary(callee))
                if value.dtype == BOTTOM:
                    value = _UNKNOWN_VALUE
            else:
                value = _UNKNOWN_VALUE
        else:
            func_name = (
                func.attr
                if isinstance(func, ast.Attribute)
                else func.id if isinstance(func, ast.Name) else ""
            )
        result.calls.append(
            CallSite(
                node=node,
                func_name=func_name,
                callees=callees,
                args=args,
                keywords=keywords,
            )
        )
        return value

    def _builtin_or_numpy(
        self,
        fn: "FunctionNode",
        node: ast.Call,
        func: ast.expr,
        args: list[AValue],
        keywords: dict[str, AValue],
        env: dict[str, AValue],
        result: Inference,
    ) -> AValue | None:
        """Known builtin/numpy/ndarray-method semantics (``None`` = not known)."""
        arg0 = args[0] if args else _UNKNOWN_VALUE

        def pinned(dtype: str) -> AValue:
            return AValue(dtype, f"np.{name}(dtype=...) at line {node.lineno}")

        if isinstance(func, ast.Name):
            if func.id == "float":
                return AValue("float64")
            if func.id == "int":
                return AValue("int64")
            if func.id == "bool":
                return AValue("bool")
            if func.id == "abs":
                return arg0
            return None
        if not isinstance(func, ast.Attribute):
            return None
        name = func.attr
        base = func.value
        is_numpy = isinstance(base, ast.Name) and base.id in _NUMPY_ALIASES
        if is_numpy:
            dtype_kw = next(
                (kw.value for kw in node.keywords if kw.arg == "dtype"), None
            )
            if name in ("asarray", "array", "ascontiguousarray"):
                if dtype_kw is not None:
                    return pinned(_dtype_from_expr(dtype_kw))
                return AValue(_scalar(arg0), arg0.origin)
            if name in ("zeros", "empty", "ones", "full"):
                if dtype_kw is not None:
                    return pinned(_dtype_from_expr(dtype_kw))
                return AValue("float64", f"np.{name} default dtype")
            if name.endswith("_like") and name[: -len("_like")] in (
                "zeros",
                "empty",
                "ones",
                "full",
            ):
                if dtype_kw is not None:
                    return pinned(_dtype_from_expr(dtype_kw))
                return arg0
            if name == "arange":
                return pinned(_dtype_from_expr(dtype_kw)) if dtype_kw else _UNKNOWN_VALUE
            if name == "bincount":
                has_weights = "weights" in keywords or len(args) >= 2
                return AValue(
                    "float64" if has_weights else "int64",
                    f"np.bincount at line {node.lineno}",
                )
            if name == "unique":
                extras = sum(
                    1
                    for kw in node.keywords
                    if kw.arg in ("return_index", "return_inverse", "return_counts")
                )
                if extras:
                    return AValue((_scalar(arg0), *("int64",) * extras))
                return arg0
            if name in ("minimum", "maximum"):
                return _combine(arg0, args[1] if len(args) > 1 else _UNKNOWN_VALUE)
            if name == "where" and len(args) == 3:
                return _combine(args[1], args[2])
            if name in ("einsum", "dot", "inner", "matmul"):
                out = AValue(BOTTOM)
                for value in args:
                    if _scalar(value) == UNKNOWN:
                        return _UNKNOWN_VALUE
                    if _scalar(value) != _PYNUM:
                        out = join_values(out, value)
                return out if out.dtype != BOTTOM else _UNKNOWN_VALUE
            if name in ("sum", "cumsum", "prod", "max", "min"):
                if dtype_kw is not None:
                    return pinned(_dtype_from_expr(dtype_kw))
                return arg0
            if name in _NP_FLOAT64:
                return AValue("float64", f"np.{name} at line {node.lineno}")
            if name in _NP_INT64:
                return AValue("int64", f"np.{name} at line {node.lineno}")
            if name in _NP_BOOL:
                return AValue("bool")
            if name in _NP_PASSTHROUGH:
                return arg0
            if name == "bool_":
                return AValue("bool")
            if name in DTYPES:  # np.int64(x) scalar constructors
                return AValue(name)
            return _UNKNOWN_VALUE  # unmodelled numpy call: stay silent
        # ndarray-ish method calls on an evaluated receiver.
        receiver = self._eval(fn, base, env, result)
        if name == "astype":
            target = next(
                (kw.value for kw in node.keywords if kw.arg == "dtype"),
                node.args[0] if node.args else None,
            )
            return AValue(
                _dtype_from_expr(target), f".astype(...) at line {node.lineno}"
            )
        if name in ("mean", "std", "var"):
            return AValue("float64")
        if name in ("argsort", "argmin", "argmax"):
            return AValue("int64")
        if name in _METHOD_PASSTHROUGH:
            return receiver
        return None  # unknown method: let the call graph try
