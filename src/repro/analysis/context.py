"""Per-file analysis context: role classification, AST, and suppressions.

The rule set is *domain-aware*: what counts as a violation depends on
where the code lives.  ``classify`` maps a path onto a :class:`Role`:

* ``KERNEL`` — the numerical hot paths (``src/repro/sketches``,
  ``src/repro/hashing``, ``src/repro/core``) where dtype and purity rules
  apply;
* ``LIBRARY`` — any other module under ``src/repro``;
* ``SCRIPT`` — examples and benchmarks (library conventions apply, but
  not kernel ones);
* ``TEST`` — test modules, where no rules apply by default;
* ``UNKNOWN`` — anything else (no rules apply).

Fixture files used by the linter's own test suite live under a directory
named ``analysis_fixtures`` and *mirror* the repo layout below that
marker (e.g. ``tests/analysis_fixtures/src/repro/sketches/bad.py`` is
classified as KERNEL).  Directory walks skip fixture directories, so the
repository itself lints clean; fixtures are only analysed when named
explicitly.

Suppression syntax (matched per finding line)::

    something_noisy()  # repro: noqa          -- silences every rule
    something_noisy()  # repro: noqa[R2]      -- silences listed rules
    something_noisy()  # repro: noqa[R2,R3]
"""

from __future__ import annotations

import ast
import enum
import re
from dataclasses import dataclass, field
from pathlib import PurePath

#: Directory marker under which self-test fixtures mirror the repo layout.
FIXTURE_MARKER = "analysis_fixtures"

#: Sub-packages of ``repro`` holding the numerical kernels.
KERNEL_PACKAGES = frozenset({"sketches", "hashing", "core"})

#: Sub-packages that are deliberately standalone (vendorable with no
#: intra-repo imports); the error-discipline rule exempts them.
STANDALONE_PACKAGES = frozenset(
    {"obs", "analysis", "trace", "bench", "monitor", "profile", "federate"}
)

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Z0-9,\s]+)\])?")


class Role(enum.Enum):
    """Which rule profile applies to a file (see module docstring)."""

    KERNEL = "kernel"
    LIBRARY = "library"
    SCRIPT = "script"
    TEST = "test"
    UNKNOWN = "unknown"


def _effective_parts(path: str) -> tuple[str, ...]:
    """Path components used for classification, fixture marker stripped."""
    parts = PurePath(path).parts
    if FIXTURE_MARKER in parts:
        parts = parts[parts.index(FIXTURE_MARKER) + 1 :]
    return parts


def classify(path: str) -> Role:
    """Map a file path onto the :class:`Role` its rules are chosen by."""
    parts = _effective_parts(path)
    if not parts:
        return Role.UNKNOWN
    name = parts[-1]
    if "tests" in parts[:-1] or name.startswith("test_") or name == "conftest.py":
        return Role.TEST
    if "repro" in parts[:-1]:
        sub = subpackage(path)
        return Role.KERNEL if sub in KERNEL_PACKAGES else Role.LIBRARY
    if "examples" in parts[:-1] or "benchmarks" in parts[:-1]:
        return Role.SCRIPT
    return Role.UNKNOWN


def subpackage(path: str) -> str | None:
    """First package component under ``repro`` (``None`` outside it).

    ``src/repro/sketches/hash_sketch.py`` -> ``"sketches"``;
    ``src/repro/errors.py`` -> ``""`` (top-level module).
    """
    parts = _effective_parts(path)
    if "repro" not in parts[:-1]:
        return None
    rest = parts[parts.index("repro") + 1 :]
    return rest[0] if len(rest) > 1 else ""


def parse_suppressions(source: str) -> dict[int, frozenset[str] | None]:
    """Line -> suppressed rule ids (``None`` means all rules)."""
    out: dict[int, frozenset[str] | None] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(line)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            out[lineno] = None
        else:
            out[lineno] = frozenset(
                r.strip() for r in rules.split(",") if r.strip()
            )
    return out


@dataclass
class FileContext:
    """Everything a rule needs to check one file."""

    path: str
    source: str
    tree: ast.Module
    role: Role
    subpackage: str | None
    module_name: str
    suppressions: dict[int, frozenset[str] | None] = field(default_factory=dict)

    @classmethod
    def from_source(cls, path: str, source: str) -> "FileContext":
        """Parse ``source`` into a context (raises ``SyntaxError`` as-is)."""
        tree = ast.parse(source, filename=path)
        return cls(
            path=path,
            source=source,
            tree=tree,
            role=classify(path),
            subpackage=subpackage(path),
            module_name=PurePath(path).name,
            suppressions=parse_suppressions(source),
        )

    def is_suppressed(self, rule: str, line: int) -> bool:
        """True if a ``# repro: noqa`` comment on ``line`` covers ``rule``."""
        if line not in self.suppressions:
            return False
        rules = self.suppressions[line]
        return rules is None or rule in rules
