"""repro.analysis — domain-invariant static analysis for the sketch kernels.

The paper's correctness guarantees rest on conventions the type system
cannot see: joined sketches must share one ``HashSketchSchema`` (paper
Section 4.3), sign families must be four-wise independent, per-element
update cost must stay ``O(depth)`` — which in this repo means vectorised
numpy kernels with explicit dtypes, never Python-level per-element
loops.  This package makes those conventions machine-checked: a
dependency-free (stdlib ``ast``) rule engine, a CLI, and eleven rules:

* **R1** — explicit ``dtype`` in kernel array construction;
* **R2** — no per-element Python loops in kernel hot paths;
* **R3** — ``_METRICS`` recording guarded by the ``enabled`` flag;
* **R4** — sketch randomness constructed via ``*Schema`` objects only;
* **R5** — library errors derive from ``repro.errors``;
* **R6** — RNGs constructed with explicit seeds;
* **R7** — ``_TRACER`` span recording guarded by the ``enabled`` flag;
* **R8** — estimator entry points audited by the monitor plane;
* **R9** — counter mutations flow through the sanctioned linear
  primitives (interprocedural, over the project call graph);
* **R10** — worker-plane code never writes coordinator/module state
  outside the flush/merge seam (interprocedural);
* **R11** — numpy dtypes propagated through locals/calls/returns prove
  the int64-values / float64-counters invariants (interprocedural).

R9–R11 are *project-scoped*: they see every analysed file at once
through :mod:`repro.analysis.flow`'s call graph instead of one file at
a time.

Run it::

    PYTHONPATH=src python -m repro.analysis src tests
    PYTHONPATH=src python -m repro.analysis --catalogue
    PYTHONPATH=src python -m repro.analysis --json src
    PYTHONPATH=src python -m repro.analysis --select R9,R10,R11 src
    PYTHONPATH=src python -m repro.analysis --sarif out.sarif src
    PYTHONPATH=src python -m repro.analysis --graph-out graph.json src
    PYTHONPATH=src python -m repro.analysis suppressions src --strict

Suppress a deliberate exception with ``# repro: noqa[R1]`` plus a
reason comment on the finding's line (the ``suppressions`` subcommand
audits every site and ``--strict`` rejects reason-less ones).  Full
rule catalogue: ``docs/STATIC_ANALYSIS.md``.

Like :mod:`repro.obs`, this package imports **only the standard
library** (no numpy, no intra-repo modules) so it can lint any checkout
— including one whose dependencies are not installed; the test suite
enforces that.
"""

from __future__ import annotations

from . import rules  # noqa: F401  (registers the built-in rule set)
from .cli import main
from .context import FileContext, Role, classify
from .engine import Report, analyze_paths, analyze_source, iter_python_files
from .findings import Finding
from .flow import CallGraph, DtypeInterpreter, ProjectContext
from .registry import Rule, all_rules, catalogue, get_rules, register
from .sarif import to_sarif
from .suppress import Suppression, audit, collect_suppressions

__all__ = [
    "CallGraph",
    "DtypeInterpreter",
    "FileContext",
    "Finding",
    "ProjectContext",
    "Report",
    "Role",
    "Rule",
    "Suppression",
    "all_rules",
    "analyze_paths",
    "analyze_source",
    "audit",
    "catalogue",
    "classify",
    "collect_suppressions",
    "get_rules",
    "iter_python_files",
    "main",
    "register",
    "to_sarif",
]
