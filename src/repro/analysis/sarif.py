"""SARIF 2.1.0 export of an analysis report.

SARIF (Static Analysis Results Interchange Format) is the schema GitHub
code scanning ingests; ``python -m repro.analysis --sarif out.sarif``
writes one and CI uploads it, so findings annotate pull requests inline.
Only stable, schema-required fields are emitted — rule metadata comes
from the same docstrings that drive ``--catalogue``.
"""

from __future__ import annotations

import inspect

from .engine import Report
from .findings import PARSE_ERROR_RULE, Finding
from .registry import all_rules

_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"
_VERSION = "2.1.0"


def _rule_descriptors(findings: list[Finding]) -> list[dict[str, object]]:
    """``tool.driver.rules`` entries for every registered rule (plus the
    parse-error pseudo-rule when it actually fired)."""
    descriptors = []
    for rule in all_rules():
        doc = inspect.cleandoc(rule.__doc__ or "")
        descriptors.append(
            {
                "id": rule.rule_id,
                "name": rule.__class__.__name__,
                "shortDescription": {"text": rule.title},
                "fullDescription": {"text": doc.split("\n\n")[0]},
                "help": {"text": doc},
                "defaultConfiguration": {"level": "error"},
            }
        )
    if any(f.rule == PARSE_ERROR_RULE for f in findings):
        descriptors.append(
            {
                "id": PARSE_ERROR_RULE,
                "name": "ParseError",
                "shortDescription": {"text": "file does not parse"},
                "defaultConfiguration": {"level": "error"},
            }
        )
    return descriptors


def _result(finding: Finding) -> dict[str, object]:
    return {
        "ruleId": finding.rule,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
    }


def to_sarif(report: Report) -> dict[str, object]:
    """Render ``report`` as a SARIF 2.1.0 log (a JSON-ready dict)."""
    return {
        "$schema": _SCHEMA_URI,
        "version": _VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.analysis",
                        "rules": _rule_descriptors(report.findings),
                    }
                },
                "results": [_result(f) for f in report.findings],
                "columnKind": "utf16CodeUnits",
            }
        ],
    }
