"""Suppression audit: every ``# repro: noqa`` site, with rule, age, reason.

A suppression is technical debt with a justification attached; this
module makes both visible.  ``python -m repro.analysis suppressions``
lists every site; ``--strict`` (wired into ``make lint``) fails the
build when any suppression lacks a reason comment, so debt cannot
accumulate silently.

Syntax audited (the text after the bracket is the reason)::

    risky()  # repro: noqa[R2] -- justification goes here

Comments are extracted with :mod:`tokenize`, so noqa *examples* inside
docstrings (the rule documentation is full of them) are never mistaken
for live suppressions.  Age comes from ``git blame`` when available.
"""

from __future__ import annotations

import io
import re
import subprocess
import time
import tokenize
from dataclasses import dataclass
from typing import Iterator, Sequence

from .context import _NOQA_RE
from .engine import iter_python_files

#: Reason text: whatever follows the noqa marker, minus separator dashes.
_REASON_RE = re.compile(r"^[\s:,-]*(?P<reason>.*?)\s*$")


@dataclass(frozen=True)
class Suppression:
    """One live ``# repro: noqa`` comment in the codebase."""

    path: str
    line: int
    rules: tuple[str, ...]  #: empty tuple means "all rules"
    reason: str  #: empty string means reason-less (fails --strict)
    age: str  #: human-readable blame age, or "uncommitted"/"unknown"

    def render(self) -> str:
        """One audit line: ``path:line: noqa[rules] age=... reason: ...``."""
        rules = ",".join(self.rules) if self.rules else "all"
        reason = self.reason if self.reason else "(no reason given)"
        return (
            f"{self.path}:{self.line}: noqa[{rules}] age={self.age} "
            f"reason: {reason}"
        )


def _iter_comment_tokens(source: str) -> Iterator[tuple[int, str]]:
    """(line, text) for every real comment token (docstrings excluded)."""
    reader = io.StringIO(source).readline
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except (tokenize.TokenError, IndentationError):
        return  # unparseable tail: report what was tokenised so far


def _parse_comment(comment: str) -> tuple[tuple[str, ...], str] | None:
    """(rules, reason) if ``comment`` contains a noqa marker, else None."""
    match = _NOQA_RE.search(comment)
    if match is None:
        return None
    rules_group = match.group("rules")
    rules = (
        tuple(sorted(r.strip() for r in rules_group.split(",") if r.strip()))
        if rules_group is not None
        else ()
    )
    tail = comment[match.end() :]
    reason_match = _REASON_RE.match(tail)
    reason = reason_match.group("reason") if reason_match else ""
    return rules, reason


def _blame_age(path: str, line: int, now: float | None = None) -> str:
    """Age of ``path:line`` from git blame (graceful off-git fallback)."""
    try:
        proc = subprocess.run(
            [
                "git",
                "blame",
                "-L",
                f"{line},{line}",
                "--line-porcelain",
                "--",
                path,
            ],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if proc.returncode != 0:
        return "unknown"
    committer_time = None
    for out_line in proc.stdout.splitlines():
        if out_line.startswith("committer-time "):
            committer_time = int(out_line.split()[1])
        elif out_line.startswith("author "):
            if "Not Committed Yet" in out_line:
                return "uncommitted"
    if committer_time is None:
        return "unknown"
    days = max(0.0, ((now if now is not None else time.time()) - committer_time)) / 86400.0
    if days < 1:
        return "<1d"
    return f"{int(days)}d"


def collect_suppressions(
    paths: Sequence[str], with_age: bool = True
) -> list[Suppression]:
    """Every live suppression under ``paths`` (docstring examples skipped)."""
    out: list[Suppression] = []
    for filename in iter_python_files(paths):
        with open(filename, "r", encoding="utf-8") as handle:
            source = handle.read()
        for line, comment in _iter_comment_tokens(source):
            parsed = _parse_comment(comment)
            if parsed is None:
                continue
            rules, reason = parsed
            out.append(
                Suppression(
                    path=filename,
                    line=line,
                    rules=rules,
                    reason=reason,
                    age=_blame_age(filename, line) if with_age else "unknown",
                )
            )
    out.sort(key=lambda s: (s.path, s.line))
    return out


def audit(
    paths: Sequence[str], strict: bool = False, with_age: bool = True
) -> tuple[list[Suppression], int]:
    """Collect suppressions; exit code 1 iff strict and any is reason-less."""
    suppressions = collect_suppressions(paths, with_age=with_age)
    reasonless = [s for s in suppressions if not s.reason]
    exit_code = 1 if (strict and reasonless) else 0
    return suppressions, exit_code
