"""Small AST helpers shared by the rules (stdlib ``ast`` only)."""

from __future__ import annotations

import ast
from typing import Iterator

#: Names the ``numpy`` module is conventionally bound to.
NUMPY_ALIASES = frozenset({"np", "numpy"})


def is_numpy_attr(node: ast.AST, attr: str | frozenset[str]) -> bool:
    """True for ``np.<attr>`` / ``numpy.<attr>`` attribute nodes."""
    attrs = frozenset({attr}) if isinstance(attr, str) else attr
    return (
        isinstance(node, ast.Attribute)
        and node.attr in attrs
        and isinstance(node.value, ast.Name)
        and node.value.id in NUMPY_ALIASES
    )


def call_keyword(node: ast.Call, name: str) -> ast.keyword | None:
    """The keyword argument ``name`` of ``node``, if passed."""
    for kw in node.keywords:
        if kw.arg == name:
            return kw
    return None


def walk_functions(tree: ast.AST) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Every (async) function definition in ``tree``, outermost first."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def enclosing_class_names(tree: ast.AST) -> dict[ast.AST, str]:
    """Map each node to the name of its innermost enclosing class, if any."""
    owners: dict[ast.AST, str] = {}

    def visit(node: ast.AST, current: str | None) -> None:
        if isinstance(node, ast.ClassDef):
            current = node.name
        for child in ast.iter_child_nodes(node):
            if current is not None:
                owners[child] = current
            visit(child, current)

    visit(tree, None)
    return owners


def annotation_mentions(annotation: ast.AST | None, needles: frozenset[str]) -> bool:
    """True if the unparsed annotation text contains any needle."""
    if annotation is None:
        return False
    try:
        text = ast.unparse(annotation)
    except Exception:  # pragma: no cover - malformed annotation
        return False
    return any(needle in text for needle in needles)
