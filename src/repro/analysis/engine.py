"""File collection and rule execution.

``analyze_paths`` is the one entry point: it expands directories into
Python files (skipping caches, VCS internals, and — crucially — the
linter's own ``analysis_fixtures``, so the shipped repo lints clean
while fixtures still fire when named explicitly), parses each file once,
runs every applicable rule, and applies ``# repro: noqa`` suppressions.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from .context import FIXTURE_MARKER, FileContext
from .findings import PARSE_ERROR_RULE, Finding
from .flow.project import ProjectContext
from .registry import Rule, get_rules

#: Directory names never descended into during a walk.  Explicitly named
#: files are always analysed, which is how the self-tests lint fixtures.
EXCLUDED_DIRS = frozenset(
    {
        FIXTURE_MARKER,
        "__pycache__",
        ".git",
        ".hypothesis",
        ".pytest_cache",
        "build",
        "dist",
    }
)


@dataclass
class Report:
    """Outcome of one analysis run."""

    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    suppressed: int = 0
    #: The project context of the run (call graph etc.); not serialised —
    #: the CLI uses it for ``--graph-out``.
    project: "ProjectContext | None" = None

    @property
    def counts(self) -> dict[str, int]:
        """Findings per rule id, sorted by id."""
        out: dict[str, int] = {}
        for f in sorted(self.findings, key=lambda f: f.rule):
            out[f.rule] = out.get(f.rule, 0) + 1
        return out

    def exit_code(self) -> int:
        """0 when clean, 1 when any finding survived suppression."""
        return 1 if self.findings else 0

    def to_dict(self) -> dict[str, object]:
        """The JSON report schema (see ``docs/STATIC_ANALYSIS.md``)."""
        return {
            "version": 1,
            "files_scanned": self.files_scanned,
            "suppressed": self.suppressed,
            "counts": self.counts,
            "findings": [f.to_dict() for f in self.findings],
        }


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Expand ``paths`` into Python files, deterministically ordered.

    Directories are walked recursively minus :data:`EXCLUDED_DIRS` and
    hidden directories; explicitly named files are yielded as-is (even
    fixtures).  Raises ``FileNotFoundError`` for a path that does not
    exist — the CLI maps that to a usage error.
    """
    for path in paths:
        if os.path.isfile(path):
            yield path
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d
                    for d in dirnames
                    if d not in EXCLUDED_DIRS and not d.startswith(".")
                )
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        yield os.path.join(dirpath, filename)
        else:
            raise FileNotFoundError(path)


def _check_file(
    ctx: FileContext, rules: Sequence[Rule]
) -> tuple[list[Finding], int]:
    """Run the file-scoped ``rules`` over one parsed context."""
    findings: list[Finding] = []
    suppressed = 0
    for rule in rules:
        if rule.scope != "file" or not rule.applies_to(ctx):
            continue
        for finding in rule.check(ctx):
            if ctx.is_suppressed(finding.rule, finding.line):
                suppressed += 1
            else:
                findings.append(finding)
    return findings, suppressed


def _check_project(
    project: ProjectContext, rules: Sequence[Rule]
) -> tuple[list[Finding], int]:
    """Run the project-scoped ``rules`` once over all parsed contexts.

    A finding is suppressible by a ``# repro: noqa`` comment in whichever
    file it lands in, exactly like file-scoped findings.
    """
    findings: list[Finding] = []
    suppressed = 0
    for rule in rules:
        if rule.scope != "project":
            continue
        for finding in rule.check_project(project):
            ctx = project.context_for(finding.path)
            if ctx is not None and ctx.is_suppressed(finding.rule, finding.line):
                suppressed += 1
            else:
                findings.append(finding)
    return findings, suppressed


def analyze_source(
    source: str, path: str = "<string>", rules: Iterable[Rule] | None = None
) -> tuple[list[Finding], int]:
    """Run rules over one source string; returns (findings, suppressed).

    Project-scoped rules run against a single-file project, so fixture
    tests exercise them through the same entry point.
    """
    chosen = list(rules) if rules is not None else get_rules()
    try:
        ctx = FileContext.from_source(path, source)
    except SyntaxError as exc:
        finding = Finding(
            PARSE_ERROR_RULE,
            path,
            exc.lineno or 1,
            (exc.offset or 1) - 1,
            f"file does not parse: {exc.msg}",
        )
        return [finding], 0
    findings, suppressed = _check_file(ctx, chosen)
    if any(rule.scope == "project" for rule in chosen):
        project_findings, project_suppressed = _check_project(
            ProjectContext([ctx]), chosen
        )
        findings.extend(project_findings)
        suppressed += project_suppressed
    findings.sort(key=Finding.sort_key)
    return findings, suppressed


def analyze_paths(
    paths: Sequence[str], select: Iterable[str] | None = None
) -> Report:
    """Analyse every Python file reachable from ``paths``.

    File-scoped rules run per file as before; project-scoped rules run
    once over every file that parsed, sharing one call graph.
    """
    rules = get_rules(select)
    report = Report()
    contexts: list[FileContext] = []
    for filename in iter_python_files(paths):
        with open(filename, "r", encoding="utf-8") as handle:
            source = handle.read()
        report.files_scanned += 1
        try:
            ctx = FileContext.from_source(filename, source)
        except SyntaxError as exc:
            report.findings.append(
                Finding(
                    PARSE_ERROR_RULE,
                    filename,
                    exc.lineno or 1,
                    (exc.offset or 1) - 1,
                    f"file does not parse: {exc.msg}",
                )
            )
            continue
        contexts.append(ctx)
        findings, suppressed = _check_file(ctx, rules)
        report.findings.extend(findings)
        report.suppressed += suppressed
    report.project = ProjectContext(contexts)
    findings, suppressed = _check_project(report.project, rules)
    report.findings.extend(findings)
    report.suppressed += suppressed
    report.findings.sort(key=Finding.sort_key)
    return report
