"""Legacy setuptools entry point (the sandbox lacks the `wheel` package,
so PEP 660 editable installs are unavailable; metadata lives in
pyproject.toml)."""

from setuptools import setup

setup()
