"""E4 — Example 1 (§3): the worked skimming error-bound comparison.

Reconstructs the paper's illustrative example: two streams with a couple
of very dense values and a sparse tail, comparing the maximum additive
error bound of basic sketching (driven by the full self-join sizes)
against the skimmed bound (dense-dense exact; remaining terms driven by
residual self-join sizes).  The paper's example concludes the skimmed
space requirement is smaller "by more than a factor of 4".
"""

from __future__ import annotations

from repro.eval.figures import run_example1
from repro.eval.reporting import render_table

from _common import emit


def test_example1(benchmark):
    result = benchmark.pedantic(run_example1, rounds=1, iterations=1)
    text = render_table(
        ["quantity", "value"],
        [[key, value] for key, value in result.items()],
        title="Example 1 (reconstructed): max additive error bounds at equal space",
    )
    emit("example1", text, rows=result)
    assert result["improvement_factor"] > 4.0
