"""E5 — per-element update cost: basic AGMS O(s1*s2) vs hash sketch O(s2).

The paper's claim (3): maintaining a hash sketch touches one counter per
table (logarithmic work), while basic AGMS updates every atomic sketch.
This bench measures the per-element ``update`` cost of both synopses at
matched sizes and checks the hash sketch wins by a growing factor as the
synopsis grows — the absolute numbers are Python-flavoured, the *ratio*
is the reproduced claim.

These are true micro-benchmarks (many rounds), so the pytest-benchmark
table itself is the artifact; a summary ratio table is also emitted.
"""

from __future__ import annotations

import time

import pytest

from repro.core.estimator import SkimmedSketchSchema
from repro.eval.reporting import render_table
from repro.sketches.agms import AGMSSchema
from repro.sketches.hash_sketch import HashSketchSchema

from _common import emit

DOMAIN = 1 << 16
SHAPES = [(50, 11), (250, 59)]


def _element_update_cost(sketch, iterations: int = 200) -> float:
    start = time.perf_counter()
    for value in range(iterations):
        sketch.update(value % DOMAIN)
    return (time.perf_counter() - start) / iterations


@pytest.mark.parametrize("width,depth", SHAPES)
def test_agms_update(benchmark, width, depth):
    sketch = AGMSSchema(width, depth, DOMAIN, seed=0).create_sketch()
    benchmark(sketch.update, 12345)


@pytest.mark.parametrize("width,depth", SHAPES)
def test_hash_sketch_update(benchmark, width, depth):
    sketch = HashSketchSchema(width, depth, DOMAIN, seed=0).create_sketch()
    benchmark(sketch.update, 12345)


def test_skimmed_sketch_update(benchmark):
    sketch = SkimmedSketchSchema(250, 59, DOMAIN, seed=0).create_sketch()
    benchmark(sketch.update, 12345)


def test_update_cost_ratio(benchmark):
    """Summary artifact: AGMS/hash per-element cost ratio per shape."""

    def measure():
        rows = []
        for width, depth in SHAPES:
            agms = AGMSSchema(width, depth, DOMAIN, seed=0).create_sketch()
            hashed = HashSketchSchema(width, depth, DOMAIN, seed=0).create_sketch()
            agms_cost = _element_update_cost(agms)
            hash_cost = _element_update_cost(hashed)
            rows.append(
                [
                    f"{width}x{depth}",
                    width * depth,
                    agms_cost * 1e6,
                    hash_cost * 1e6,
                    agms_cost / hash_cost,
                ]
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    text = render_table(
        ["shape", "counters", "agms us/elem", "hash us/elem", "agms/hash"],
        rows,
        title="Per-element update cost (claim C3)",
    )
    emit(
        "update_time",
        text,
        rows=rows,
        columns=[
            "shape",
            "counters",
            "agms_us_per_elem",
            "hash_us_per_elem",
            "agms_over_hash",
        ],
    )
    small, large = rows[0][4], rows[1][4]
    # The gap must widen with synopsis size: hash-sketch cost is O(depth),
    # AGMS cost is O(width*depth).
    assert large > small
    assert large > 3.0
