"""E10 — ablation: the skim-threshold multiplier ``c`` in
``theta = c * N / sqrt(width)``.

DESIGN.md calls out the threshold constant as the one free knob of the
algorithm.  Tiny ``c`` extracts sketch noise as "dense" (inflating the
exactly-computed dense-dense term with estimation error); huge ``c``
degenerates to unskimmed Fast-AGMS.  Expected shape: a wide flat optimum
around the theory's ``c ~ 1``, degrading on both extremes, with the dense
set size shrinking monotonically in ``c``.
"""

from __future__ import annotations

from repro.eval.figures import default_scale, render_rows, run_threshold_ablation

from _common import emit

MULTIPLIERS = (0.1, 0.3, 1.0, 3.0, 10.0, 1e6)


def test_threshold_ablation(benchmark):
    scale = default_scale()
    rows = benchmark.pedantic(
        run_threshold_ablation,
        args=(MULTIPLIERS, 1.2, 50, scale),
        kwargs={"width": 200, "depth": 11, "trials": 3},
        rounds=1,
        iterations=1,
    )
    text = render_rows(
        f"Skim-threshold ablation: theta = c * N / sqrt(width), Zipf z=1.2, "
        f"shift 50 [{scale.label}]",
        rows,
    )
    emit("ablation_threshold", text, rows=rows)

    by_multiplier = {row["multiplier"]: row for row in rows}
    # Dense count shrinks monotonically as the threshold rises.
    counts = [row["mean_dense_count"] for row in rows]
    assert counts == sorted(counts, reverse=True)
    # The theory-recommended region beats the unskimmed extreme.
    assert by_multiplier[1.0]["mean_error"] < by_multiplier[1e6]["mean_error"]
