"""E6 — space to reach a target error as the join size shrinks.

Theorem 5 / claim (C2): the skimmed sketch needs ``O(N^2 / J)`` space —
the Alon et al. lower bound — while basic sketching needs the *square* of
that.  Sweeping the shift parameter shrinks the join size ``J``; at each
shift this bench finds the smallest tested synopsis reaching a 15% mean
error for each method.  Expected shape: the skimmed sketch's requirement
grows gently as the join shrinks; basic AGMS's explodes (often off the
tested range entirely, reported as ``inf``).
"""

from __future__ import annotations

import math

from repro.eval.figures import default_scale, render_rows, run_space_scaling

from _common import emit

SHIFTS = (20, 100, 300, 1000)


def test_space_scaling(benchmark):
    scale = default_scale()
    rows = benchmark.pedantic(
        run_space_scaling,
        args=(1.0, SHIFTS, scale),
        kwargs={"target_error": 0.2, "depth": 11, "trials": 5},
        rounds=1,
        iterations=1,
    )
    text = render_rows(
        "Space (words) needed for mean error <= 20%, Zipf z=1.0 "
        f"[{scale.label}]",
        rows,
    )
    emit("space_scaling", text, rows=rows)

    # Join size decreases along the shift sweep.
    joins = [row["join_size"] for row in rows]
    assert joins == sorted(joins, reverse=True)
    # The lower-bound shape: on hard (small-join) instances the skimmed
    # estimator reaches the target in less space; on easy instances the two
    # are comparable, so the checks are majority-based (5 trials tame but
    # do not eliminate sweep noise).
    wins = sum(
        1 for row in rows if row["space_skimmed"] <= row["space_basic_agms"]
    )
    assert wins >= len(rows) - 1
    hardest = rows[-1]
    assert (
        hardest["space_skimmed"] < hardest["space_basic_agms"]
        or math.isinf(hardest["space_basic_agms"])
    )
    assert not math.isinf(hardest["space_skimmed"])
