"""E1 — Figure 5(a): error vs. space, Zipf z=1.0, shifts {100, 200, 300}.

Regenerates the left panel of the paper's Figure 5: the symmetric ratio
error of basic AGMS sketching vs. the skimmed-sketch estimator as the
synopsis space (in counter words) grows, for three shift parameters
(larger shift = smaller join = harder problem).  Expected shape (paper
§5.2): skimmed error is roughly 5x-10x below basic AGMS at this skew and
stays under ~10% at a few thousand words; error rises with shift for both.
"""

from __future__ import annotations

from repro.eval.figures import render_figure5, run_figure5, scale_from_env

from _common import emit

SHIFTS = (100, 200, 300)


def test_figure5a(benchmark):
    scale = scale_from_env()
    results = benchmark.pedantic(
        run_figure5, args=(1.0, SHIFTS, scale), rounds=1, iterations=1
    )
    text = render_figure5(
        f"Figure 5(a): Zipf z=1.0, shifts {SHIFTS} — mean symmetric error "
        f"[{scale.label}]",
        results,
    )
    lines = [text, ""]
    for shift, result in results.items():
        factors = result.improvement_factors("basic_agms", "skimmed")
        pretty = ", ".join(f"{b:.0f}w: {f:.1f}x" for b, f in factors)
        lines.append(f"improvement (basic/skimmed) shift={shift}: {pretty}")
    emit(
        "figure5a",
        "\n".join(lines),
        rows={
            str(shift): {
                "series_by_space": result.series_by_space(),
                "improvement_factors": result.improvement_factors(
                    "basic_agms", "skimmed"
                ),
            }
            for shift, result in results.items()
        },
    )

    # Qualitative reproduction checks (who wins, by roughly what factor).
    for shift, result in results.items():
        basic = result.summary_for("basic_agms").mean
        skimmed = result.summary_for("skimmed").mean
        assert skimmed < basic, f"skimmed must win at shift={shift}"
    # At the largest budget and moderate shift, skimmed error is small
    # (paper: "generally less than 10%"); error grows with shift, so only
    # the easiest shift gets the tight check.
    largest = max(results[SHIFTS[0]].series_by_space()["skimmed"])[0]
    easiest = dict(results[SHIFTS[0]].series_by_space()["skimmed"])[largest]
    assert easiest < 0.15
