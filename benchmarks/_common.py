"""Shared plumbing for the benchmark suite.

Every ``bench_*.py`` file regenerates one evaluation artifact of the paper
(see the experiment index in DESIGN.md).  Results are rendered as plain
text tables — the rows a plot of the paper's figure would be drawn from —
and (a) printed, so ``pytest benchmarks/ --benchmark-only -s`` shows them
live, and (b) written under ``benchmarks/results/``, so the numbers
survive pytest's output capture and feed EXPERIMENTS.md.

Alongside each ``results/<name>.txt`` table, :func:`emit` writes a
``results/<name>.json`` sidecar carrying the *structured* rows the table
was rendered from, so downstream tooling (EXPERIMENTS.md regeneration,
cross-commit diffing with ``python -m repro.bench compare``-style
scripts) never has to re-parse a human-formatted table.

Heavyweight experiments run once inside ``benchmark.pedantic(...,
rounds=1)``: the interesting output is the accuracy table, and the
benchmark fixture's wall-clock reading doubles as a record of experiment
cost.  Micro-benchmarks (per-element update cost) use the fixture
conventionally with many rounds.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any

RESULTS_DIR = Path(__file__).parent / "results"

#: Schema version of the ``results/<name>.json`` sidecar.
SIDECAR_VERSION = 1


def _jsonable(value: Any) -> Any:
    """Recursively coerce experiment data into strict-JSON values.

    Numpy scalars expose ``.item()``; non-finite floats (legitimately
    produced by e.g. the space-scaling sweep reporting ``inf`` when a
    method never reaches the target error) become strings, because strict
    JSON has no Infinity/NaN literals.
    """
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        value = value.item()
    if isinstance(value, float) and not math.isfinite(value):
        return str(value)
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def emit(
    name: str,
    text: str,
    rows: Any = None,
    columns: list[str] | None = None,
) -> str:
    """Print an experiment's rendered table and persist it to results/.

    ``rows`` is the structured data behind the table (any JSON-able
    shape: a list of dicts, a list of row lists — pass ``columns`` to
    name their fields — or a nested dict for multi-part artifacts); it is
    written to ``results/<name>.json``.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    sidecar = {
        "version": SIDECAR_VERSION,
        "kind": "repro.bench-table",
        "name": name,
        "columns": columns,
        "rows": _jsonable(rows),
    }
    json_path = RESULTS_DIR / f"{name}.json"
    json_path.write_text(json.dumps(sidecar, indent=2, sort_keys=True) + "\n")
    print(f"\n{text}\n[written to {path} and {json_path}]")
    return text
