"""Shared plumbing for the benchmark suite.

Every ``bench_*.py`` file regenerates one evaluation artifact of the paper
(see the experiment index in DESIGN.md).  Results are rendered as plain
text tables — the rows a plot of the paper's figure would be drawn from —
and (a) printed, so ``pytest benchmarks/ --benchmark-only -s`` shows them
live, and (b) written under ``benchmarks/results/``, so the numbers
survive pytest's output capture and feed EXPERIMENTS.md.

Heavyweight experiments run once inside ``benchmark.pedantic(...,
rounds=1)``: the interesting output is the accuracy table, and the
benchmark fixture's wall-clock reading doubles as a record of experiment
cost.  Micro-benchmarks (per-element update cost) use the fixture
conventionally with many rounds.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, text: str) -> str:
    """Print an experiment's rendered table and persist it to results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")
    return text
