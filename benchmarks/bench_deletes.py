"""E8 — general update streams: accuracy under heavy insert/delete churn.

Claim (C4): sketches are linear projections, so deletions are handled
exactly — a stream with 50% transient churn (values inserted then later
deleted) must produce the *same* synopsis state, and therefore the same
join estimate, as the clean insert-only stream with the same net state.
(This is precisely what breaks sampling; see the E11 panel.)
"""

from __future__ import annotations

import numpy as np

from repro.core.estimator import SkimmedSketchSchema
from repro.eval.metrics import join_error
from repro.eval.reporting import render_table
from repro.streams.generators import insert_delete_stream, shifted_zipf_pair

from _common import emit

DOMAIN = 1 << 12
TOTAL = 20_000


def run_delete_experiment(churn_fractions=(0.0, 0.25, 0.5)):
    f, g = shifted_zipf_pair(DOMAIN, TOTAL, 1.2, 20)
    actual = f.join_size(g)
    schema = SkimmedSketchSchema(256, 11, DOMAIN, seed=5)
    rows = []
    for churn in churn_fractions:
        rng = np.random.default_rng(int(churn * 100))
        sketch_f = schema.create_sketch()
        sketch_f.consume(insert_delete_stream(f, churn, rng))
        sketch_g = schema.create_sketch()
        sketch_g.consume(insert_delete_stream(g, churn, rng))
        estimate = sketch_f.est_join_size(sketch_g)
        rows.append([churn, estimate, actual, join_error(estimate, actual)])
    return rows


def test_deletes(benchmark):
    rows = benchmark.pedantic(run_delete_experiment, rounds=1, iterations=1)
    text = render_table(
        ["churn fraction", "estimate", "actual", "symmetric error"],
        rows,
        title="Join estimate under insert/delete churn (claim C4)",
    )
    emit(
        "deletes",
        text,
        rows=rows,
        columns=["churn_fraction", "estimate", "actual", "symmetric_error"],
    )

    errors = [row[3] for row in rows]
    # All churn levels land near the clean estimate; deletes are exact, so
    # only the skim threshold (driven by gross stream volume) shifts a bit.
    assert max(errors) < 0.2
    estimates = [row[1] for row in rows]
    spread = (max(estimates) - min(estimates)) / rows[0][2]
    assert spread < 0.1
