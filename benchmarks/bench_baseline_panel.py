"""E11 — baseline panel: every estimator the paper discusses, equal space.

One skewed workload (Zipf z=1.25, shift 50), every method at the same word
budget: basic AGMS [4], unskimmed hash sketches (Fast-AGMS), the skimmed
sketch (this paper), reservoir sampling [13], bifocal sampling [16] (with
the offline index access it assumes), and domain-partitioned AGMS [5] with
*perfect* frequency hints (its best case).

Expected ordering (paper §1-§3): skimmed leads basic AGMS, sampling, and
bifocal; partitioned AGMS can be competitive only thanks to a-priori
statistics a stream does not offer, and a second panel degrades those
hints to show exactly that dependence.  One honest caveat the paper
predates: the *unskimmed* hash-sketch estimator (Fast-AGMS) already gains
a lot of skew-robustness from median boosting alone (later formalised by
Cormode & Garofalakis, 2005), so skimmed-vs-fast-AGMS is close here — the
paper's dramatic factors are against basic AGMS, and so are ours.
"""

from __future__ import annotations

from repro.eval.figures import default_scale, render_rows, run_baseline_panel

from _common import emit

WORKLOAD = dict(z=1.25, shift=50, width=200, depth=11, trials=3)


def run_both_panels():
    scale = default_scale()
    perfect = run_baseline_panel(scale, hint_quality=1.0, **WORKLOAD)
    degraded = run_baseline_panel(scale, hint_quality=0.0, **WORKLOAD)
    return perfect, degraded


def test_baseline_panel(benchmark):
    perfect, degraded = benchmark.pedantic(run_both_panels, rounds=1, iterations=1)
    scale = default_scale()
    text = "\n\n".join(
        [
            render_rows(
                f"Baseline panel (equal space, Zipf z={WORKLOAD['z']}, "
                f"shift={WORKLOAD['shift']}, perfect hints) [{scale.label}]",
                perfect,
            ),
            render_rows(
                "Same panel with uniform (useless) hints for partitioned AGMS",
                degraded,
            ),
        ]
    )
    emit("baseline_panel", text, rows={"perfect": perfect, "degraded": degraded})

    errors = {row["method"]: row["mean_error"] for row in perfect}
    # Skimmed beats the baselines the paper compares against.
    assert errors["skimmed"] < errors["basic_agms"]
    assert errors["skimmed"] < errors["reservoir"]
    assert errors["skimmed"] < errors["bifocal"]
    # Partitioned AGMS collapses when its a-priori hints are junk — the
    # paper's §1 criticism of [5].
    degraded_errors = {row["method"]: row["mean_error"] for row in degraded}
    assert degraded_errors["partitioned"] > 2 * errors["partitioned"]
