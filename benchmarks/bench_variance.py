"""E12 — error variance: basic AGMS vs skimmed across repeated trials.

The paper's §5.2 closes with: "there is much more variance in the error
for the basic sketching method compared to our skimmed-sketch technique —
we attribute this to the high self-join sizes with basic sketching".
This bench runs one skewed configuration over many independent trials and
compares the error spread (standard deviation) of the two methods.
"""

from __future__ import annotations

import numpy as np

from repro.eval.figures import default_scale, make_shifted_zipf_workload
from repro.eval.reporting import render_table
from repro.eval.runner import SchemaCache, SweepConfig, make_estimators, run_sweep

from _common import emit

CONFIG = SweepConfig(
    widths=(200,),
    depths=(11,),
    space_budgets=(2_200,),
    trials=10,
    seed=21,
    vary_estimator_seed=True,
)


def run_variance(z=1.2, shift=50):
    scale = default_scale()
    cache = SchemaCache(scale.domain_size)
    estimators = make_estimators(cache, ("basic_agms", "skimmed"))
    workload = make_shifted_zipf_workload(
        scale.domain_size, scale.stream_total, z, shift
    )
    result = run_sweep(workload, estimators, CONFIG)
    cache.clear()
    return result


def test_variance(benchmark):
    result = benchmark.pedantic(run_variance, rounds=1, iterations=1)
    rows = []
    for method in result.methods():
        errors = result.errors_for(method)
        rows.append(
            [method, float(np.mean(errors)), float(np.std(errors)),
             float(np.max(errors))]
        )
    text = render_table(
        ["method", "mean error", "error stddev", "worst error"],
        rows,
        title=(
            "Error spread over 10 trials (Zipf z=1.2, shift 50, "
            "200x11 counters) — §5.2 variance observation"
        ),
    )
    emit(
        "variance",
        text,
        rows=rows,
        columns=["method", "mean_error", "error_stddev", "worst_error"],
    )

    spread = {row[0]: row[2] for row in rows}
    assert spread["skimmed"] < spread["basic_agms"]