"""E3 — Census experiment: wage join wage-overtime, domain 2**16.

The paper's real-life data set (CPS September 2002) is not
redistributable; per DESIGN.md's substitution table this bench joins the
synthetic Census-like pair (159,434 records, same domain, same skew
shape).  Expected result (paper §5.2 / [17]): both methods do noticeably
better than on the synthetic Zipf torture tests, with skimmed sketches at
roughly *half* the error of basic AGMS.
"""

from __future__ import annotations

from repro.eval.figures import run_census
from repro.eval.reporting import render_series

from _common import emit


def test_census(benchmark):
    result = benchmark.pedantic(run_census, kwargs={"trials": 3}, rounds=1, iterations=1)
    series = result.series_by_space()
    text = render_series(
        "Census (synthetic stand-in): wage vs wage-overtime join, "
        "domain=2^16, 159,434 records — mean symmetric error",
        "space (words)",
        series,
    )
    factors = result.improvement_factors("basic_agms", "skimmed")
    pretty = ", ".join(f"{b:.0f}w: {f:.1f}x" for b, f in factors)
    emit(
        "census",
        f"{text}\n\nimprovement (basic/skimmed): {pretty}",
        rows={"series_by_space": series, "improvement_factors": factors},
    )

    basic = result.summary_for("basic_agms").mean
    skimmed = result.summary_for("skimmed").mean
    assert skimmed < basic
