"""E7 — dyadic SKIMDENSE cost: O((N/T) log D) descent vs O(D) scan.

Section 4.2's optimisation: instead of estimating every domain value,
descend a dyadic-interval hierarchy pruning sub-threshold intervals.  The
bench counts point estimates performed by the descent vs the flat scan as
the domain grows (with a fixed number of planted heavy values), and
verifies the descent still recovers the heavy values.  Expected shape:
descent cost roughly flat (log-ish), flat-scan cost linear in |D| — the
saving factor grows with the domain.
"""

from __future__ import annotations

from repro.eval.figures import render_rows, run_dyadic_cost

from _common import emit

DOMAINS = (1 << 12, 1 << 14, 1 << 16, 1 << 18)


def test_dyadic_skim_cost(benchmark):
    rows = benchmark.pedantic(
        run_dyadic_cost,
        kwargs={"domain_sizes": DOMAINS, "num_heavy": 32},
        rounds=1,
        iterations=1,
    )
    text = render_rows(
        "Dyadic SKIMDENSE descent cost vs flat domain scan (32 heavy values)",
        rows,
    )
    emit("skim_dyadic", text, rows=rows)

    savings = [row["saving_factor"] for row in rows]
    assert savings == sorted(savings), "saving factor must grow with domain"
    assert savings[-1] > 50.0
    assert all(row["heavy_recall"] >= 0.9 for row in rows)
