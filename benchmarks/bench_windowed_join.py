"""E13 — extension: windowed join accuracy and exact epoch expiry.

Joins over the last ``W`` epochs (the sliding-window setting of related
work [12]) come free from sketch linearity.  This bench streams epochs
whose cross-correlation changes over time and checks that (a) the
windowed estimate tracks the exact windowed join closely at every tick,
and (b) content older than the window contributes *nothing* (expiry is
exact, not decayed).
"""

from __future__ import annotations

import numpy as np

from repro.eval.metrics import join_error
from repro.eval.reporting import render_table
from repro.streams.generators import zipf_frequencies
from repro.streams.windows import WindowedSketchSchema

from _common import emit

DOMAIN = 1 << 12
EPOCH_ELEMENTS = 30_000
WINDOW = 3
EPOCHS = 8


def run_windowed_join():
    schema = WindowedSketchSchema(
        width=256, depth=11, domain_size=DOMAIN, window_epochs=WINDOW, seed=13
    )
    sketch_f, sketch_g = schema.create_sketch(), schema.create_sketch()
    history_f: list[np.ndarray] = []
    history_g: list[np.ndarray] = []
    rng = np.random.default_rng(2)

    rows = []
    for epoch in range(EPOCHS):
        if epoch > 0:
            sketch_f.advance_epoch()
            sketch_g.advance_epoch()
        # Correlation regime flips mid-run: at first G mirrors F's skew,
        # later G's heavy values shift away.
        shift = 0 if epoch < EPOCHS // 2 else 10
        f_epoch = zipf_frequencies(DOMAIN, EPOCH_ELEMENTS, 1.1, rng).counts
        g_epoch = np.roll(
            zipf_frequencies(DOMAIN, EPOCH_ELEMENTS, 1.1, rng).counts, shift
        )
        history_f.append(f_epoch)
        history_g.append(g_epoch)
        sketch_f.update_bulk(np.flatnonzero(f_epoch), f_epoch[f_epoch > 0])
        sketch_g.update_bulk(np.flatnonzero(g_epoch), g_epoch[g_epoch > 0])

        window_f = np.sum(history_f[-WINDOW:], axis=0)
        window_g = np.sum(history_g[-WINDOW:], axis=0)
        exact = float(window_f @ window_g)
        estimate = sketch_f.est_join_size(sketch_g)
        rows.append([epoch, shift, estimate, exact, join_error(estimate, exact)])
    return rows


def test_windowed_join(benchmark):
    rows = benchmark.pedantic(run_windowed_join, rounds=1, iterations=1)
    text = render_table(
        ["epoch", "shift", "windowed estimate", "exact windowed join", "error"],
        rows,
        title=(
            f"Windowed join over last {WINDOW} epochs (correlation regime "
            f"flips at epoch {EPOCHS // 2})"
        ),
    )
    emit(
        "windowed_join",
        text,
        rows=rows,
        columns=["epoch", "shift", "windowed_estimate", "exact_windowed_join", "error"],
    )

    errors = [row[4] for row in rows]
    assert max(errors) < 0.2
    # Once the window holds only post-flip epochs, the join has dropped
    # hard versus the pre-flip window — and the estimate tracked it.
    assert rows[-1][3] < 0.5 * rows[EPOCHS // 2 - 1][3]  # join dropped >= 2x
