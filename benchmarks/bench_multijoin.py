"""E9 — multi-join extension: COUNT over a 3-way chain join.

The paper notes its techniques "readily extend to complex, multi-join
queries ... in a manner similar to [5]"; this bench exercises the
Dobra-style sketch composition substrate on
``COUNT(R1(a) join R2(a, b) join R3(b))`` with skewed attribute
distributions, reporting error vs. space (averaging copies).
"""

from __future__ import annotations

import numpy as np

from repro.eval.metrics import join_error
from repro.eval.reporting import render_table
from repro.streams.multijoin import MultiJoinSchema, est_multi_join_count

from _common import emit

ATTR_DOMAIN = 256
TUPLES = 20_000


def _draw_relations(rng):
    """Skewed tuple sets for the chain; returns tuple arrays + exact count."""
    pmf = (np.arange(1, ATTR_DOMAIN + 1) ** -1.0)
    pmf /= pmf.sum()
    r1 = rng.choice(ATTR_DOMAIN, size=TUPLES, p=pmf)
    r2 = np.column_stack(
        [rng.choice(ATTR_DOMAIN, size=TUPLES, p=pmf) for _ in range(2)]
    )
    r3 = rng.choice(ATTR_DOMAIN, size=TUPLES, p=pmf)

    f = np.bincount(r1, minlength=ATTR_DOMAIN).astype(float)
    g = np.zeros((ATTR_DOMAIN, ATTR_DOMAIN))
    np.add.at(g, (r2[:, 0], r2[:, 1]), 1.0)
    h = np.bincount(r3, minlength=ATTR_DOMAIN).astype(float)
    exact = float(f @ g @ h)
    return r1, r2, r3, exact


def run_multijoin(averaging_grid=(16, 64, 256), median=11, trials=3):
    rows = []
    for averaging in averaging_grid:
        errors = []
        for trial in range(trials):
            rng = np.random.default_rng(100 + trial)
            r1, r2, r3, exact = _draw_relations(rng)
            schema = MultiJoinSchema(
                averaging, median, {"a": ATTR_DOMAIN, "b": ATTR_DOMAIN}, seed=trial
            )
            rel1 = schema.create_relation(("a",))
            rel1.update_bulk(r1.reshape(-1, 1))
            rel2 = schema.create_relation(("a", "b"))
            rel2.update_bulk(r2)
            rel3 = schema.create_relation(("b",))
            rel3.update_bulk(r3.reshape(-1, 1))
            estimate = est_multi_join_count([rel1, rel2, rel3])
            errors.append(join_error(estimate, exact))
        rows.append([averaging * median, float(np.mean(errors))])
    return rows


def test_multijoin(benchmark):
    rows = benchmark.pedantic(run_multijoin, rounds=1, iterations=1)
    text = render_table(
        ["space (words/relation)", "mean symmetric error"],
        rows,
        title="3-way chain join COUNT (multi-join extension, Zipf z=1.0 attrs)",
    )
    emit(
        "multijoin",
        text,
        rows=rows,
        columns=["space_words_per_relation", "mean_symmetric_error"],
    )

    errors = [row[1] for row in rows]
    assert errors[-1] < errors[0], "error must shrink with space"
    assert errors[-1] < 0.5
