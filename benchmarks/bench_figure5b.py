"""E2 — Figure 5(b): error vs. space, Zipf z=1.5, shifts {30, 50}.

The high-skew panel of Figure 5.  Expected shape (paper §5.2): the
self-join sizes explode at z=1.5, wrecking basic AGMS, while skimming
removes the dense frequencies first — the gap becomes orders of magnitude
and the skimmed error is "almost zero".
"""

from __future__ import annotations

from repro.eval.figures import render_figure5, run_figure5, scale_from_env

from _common import emit

SHIFTS = (30, 50)


def test_figure5b(benchmark):
    scale = scale_from_env()
    results = benchmark.pedantic(
        run_figure5, args=(1.5, SHIFTS, scale), rounds=1, iterations=1
    )
    text = render_figure5(
        f"Figure 5(b): Zipf z=1.5, shifts {SHIFTS} — mean symmetric error "
        f"[{scale.label}]",
        results,
    )
    lines = [text, ""]
    for shift, result in results.items():
        factors = result.improvement_factors("basic_agms", "skimmed")
        pretty = ", ".join(f"{b:.0f}w: {f:.1f}x" for b, f in factors)
        lines.append(f"improvement (basic/skimmed) shift={shift}: {pretty}")
    emit(
        "figure5b",
        "\n".join(lines),
        rows={
            str(shift): {
                "series_by_space": result.series_by_space(),
                "improvement_factors": result.improvement_factors(
                    "basic_agms", "skimmed"
                ),
            }
            for shift, result in results.items()
        },
    )

    for shift, result in results.items():
        basic = result.summary_for("basic_agms").mean
        skimmed = result.summary_for("skimmed").mean
        # High skew: the win should be large (paper: orders of magnitude).
        assert skimmed * 5 < basic, f"expected a big win at shift={shift}"
        # Skimmed error itself is near zero once width is adequate
        # (paper: "almost zero when z = 1.5").
        largest = max(b for b, _ in result.series_by_space()["skimmed"])
        at_largest = dict(result.series_by_space()["skimmed"])[largest]
        assert at_largest < 0.1
