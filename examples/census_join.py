"""Census-style join: the paper's real-life experiment, end to end.

Run:  python examples/census_join.py

Joins the synthetic Census-like attribute pair (weekly wage vs. weekly
wage overtime, domain 2**16, 159,434 records — see DESIGN.md for the
substitution rationale) and compares three estimators at identical space:

* basic AGMS sketching (Alon et al. [4]) — the baseline;
* unskimmed hash sketches (Fast-AGMS) — fast updates, same variance;
* the skimmed sketch — this paper.

Also demonstrates the ``SketchParameters`` accuracy API: asking for a
space recommendation from (epsilon, delta) instead of picking raw shapes.
"""

from __future__ import annotations

from repro import AGMSSchema, HashSketchSchema, SketchParameters, SkimmedSketchSchema
from repro.eval.metrics import join_error
from repro.streams.generators import census_like_pair

DOMAIN = 1 << 16
WIDTH, DEPTH = 250, 11


def main() -> None:
    wage, overtime = census_like_pair(domain_size=DOMAIN, seed=11)
    actual = wage.join_size(overtime)
    print(f"records per stream : {wage.total_count():,.0f}")
    print(f"exact join size    : {actual:,.0f}")
    print(f"space per stream   : {WIDTH * DEPTH:,} counters\n")

    skimmed = SkimmedSketchSchema(WIDTH, DEPTH, DOMAIN, seed=0)
    estimate = skimmed.sketch_of(wage).est_join_size(skimmed.sketch_of(overtime))
    print(f"skimmed sketch     : {estimate:,.0f}  "
          f"(symmetric error {join_error(estimate, actual):.3f})")

    hashed = HashSketchSchema(WIDTH, DEPTH, DOMAIN, seed=0)
    estimate = hashed.sketch_of(wage).est_join_size(hashed.sketch_of(overtime))
    print(f"fast-AGMS (no skim): {estimate:,.0f}  "
          f"(symmetric error {join_error(estimate, actual):.3f})")

    agms = AGMSSchema(WIDTH, DEPTH, DOMAIN, seed=0)
    estimate = agms.sketch_of(wage).est_join_size(agms.sketch_of(overtime))
    print(f"basic AGMS         : {estimate:,.0f}  "
          f"(symmetric error {join_error(estimate, actual):.3f})")

    params = SketchParameters.for_accuracy(
        epsilon=0.10,
        delta=0.05,
        stream_size=wage.total_count(),
        join_size_lower_bound=actual / 2,
    )
    print(f"\nTheorem-5 sizing for 10% error at 95% confidence on this join: "
          f"width={params.width:,}, depth={params.depth} "
          f"({params.total_counters:,} counters; the worst-case bound — "
          f"the measurements above show real data needs far less)")


if __name__ == "__main__":
    main()
