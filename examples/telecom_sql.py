"""Telecom monitoring console: SQL queries over live CDR streams.

Run:  python examples/telecom_sql.py

The paper's opening scenario — continuous Call-Detail-Record analysis in
a large Telecom network — driven end to end through the textual query
interface: declare queries in the SQL subset (predicates install at
ingestion, per §2.1), stream synthetic CDRs through the engine, answer
aggregates from synopses only, and flag the heaviest callers with the
deterministic Space-Saving summary.
"""

from __future__ import annotations

import numpy as np

from repro import SketchParameters
from repro.sketches import SpaceSaving
from repro.streams import CDRSource, StreamEngine, feed_engine

SUBSCRIBERS = 1 << 14
CALLS_MORNING = 120_000
CALLS_EVENING = 120_000


def main() -> None:
    engine = StreamEngine(
        domain_size=SUBSCRIBERS,
        parameters=SketchParameters(width=300, depth=11),
        synopsis="skimmed",
        seed=99,
    )

    # Declare the standing queries up front; WHERE predicates must be
    # installed before any element flows (selection happens at ingestion).
    repeat_activity = engine.prepare_sql(
        "SELECT COUNT(*) FROM morning JOIN evening"
    )
    minutes_by_overlap = engine.prepare_sql(
        "SELECT SUM(morning_minutes) FROM morning JOIN evening"
    )
    # Restrict one copy of the morning stream to the premium subscriber
    # block [0, 256) — the Zipf-popular ids that carry most traffic.
    premium_band = engine.prepare_sql(
        "SELECT COUNT(*) FROM morning_premium JOIN evening "
        "WHERE morning_premium < 256"
    )

    source = CDRSource(SUBSCRIBERS, popularity_skew=1.1, seed=4)
    top_callers = SpaceSaving(capacity=20, domain_size=SUBSCRIBERS)

    morning = list(source.records(CALLS_MORNING, hour_of_day=9.0))
    evening = list(source.records(CALLS_EVENING, hour_of_day=20.0))

    feed_engine(engine, "morning", morning, key=lambda r: r.caller)
    feed_engine(
        engine,
        "morning_minutes",
        morning,
        key=lambda r: r.caller,
        weight=lambda r: r.duration_seconds / 60.0,
    )
    feed_engine(engine, "morning_premium", morning, key=lambda r: r.caller)
    feed_engine(engine, "evening", evening, key=lambda r: r.caller)
    for record in morning:
        top_callers.update(record.caller)

    # Exact references (what an offline warehouse would compute).
    m = np.bincount([r.caller for r in morning], minlength=SUBSCRIBERS)
    e = np.bincount([r.caller for r in evening], minlength=SUBSCRIBERS)
    exact_pairs = float(m @ e)

    print(f"CDRs processed: {CALLS_MORNING + CALLS_EVENING:,} "
          f"({engine.total_space_in_counters():,} synopsis counters total)\n")

    answer = engine.answer(repeat_activity.query)
    print("SELECT COUNT(*) FROM morning JOIN evening")
    print(f"  -> {answer:,.0f}   (exact {exact_pairs:,.0f}, "
          f"{abs(answer - exact_pairs) / exact_pairs:.2%} error)\n")

    minutes = engine.answer(minutes_by_overlap.query)
    print("SELECT SUM(morning_minutes) FROM morning JOIN evening")
    print(f"  -> {minutes:,.0f} caller-minutes weighted pair count\n")

    banded = engine.answer(premium_band.query)
    seen, dropped = engine.stream_stats("morning_premium")
    exact_banded = float(m[:256] @ e[:256])
    print("SELECT COUNT(*) FROM morning_premium JOIN evening "
          "WHERE morning_premium < 256")
    print(f"  -> {banded:,.0f}   (exact {exact_banded:,.0f}; predicate "
          f"dropped {dropped:,} of {seen:,} morning records at ingestion)\n")

    print("heaviest morning callers (Space-Saving, deterministic):")
    for entry in top_callers.tracked()[:5]:
        print(f"  subscriber {entry.value:>6}: <= {entry.count:,.0f} calls "
              f"(guaranteed >= {entry.guaranteed:,.0f}; exact "
              f"{m[entry.value]:,})")


if __name__ == "__main__":
    main()
