"""Retail stream: SUM and AVERAGE aggregates over a join, with returns.

Run:  python examples/retail_stream.py

A retail chain streams sales transactions; a marketing system streams ad
impressions keyed by the same product ids.  Questions answered on-line,
per §2.1 of the paper (SUM reduces to COUNT over a measure-weighted
stream; AVERAGE = SUM / COUNT):

* COUNT(sales join ads)        — how many (sale, impression) pairs match?
* SUM_revenue(sales join ads)  — revenue-weighted match volume;
* AVERAGE_revenue(...)         — average matched-sale revenue.

Product returns arrive as deletions and are handled exactly.  A selection
predicate drops a blacklisted product range before sketching, as the
paper prescribes ("we simply drop ... elements that do not satisfy the
predicates").
"""

from __future__ import annotations

import numpy as np

from repro import SketchParameters
from repro.streams import (
    JoinAverageQuery,
    JoinCountQuery,
    JoinSumQuery,
    RangePredicate,
    StreamEngine,
)

PRODUCTS = 1 << 12
SALES = 60_000
IMPRESSIONS = 80_000
BLACKLIST_START = 4000  # internal test skus, excluded from analytics


def main() -> None:
    engine = StreamEngine(
        domain_size=PRODUCTS,
        parameters=SketchParameters(width=256, depth=11),
        synopsis="skimmed",
        seed=7,
    )
    allowed = RangePredicate(0, BLACKLIST_START)
    engine.register_stream("sales", predicate=allowed)
    engine.register_stream("sales_revenue", predicate=allowed)
    engine.register_stream("ads", predicate=allowed)

    rng = np.random.default_rng(3)
    pmf = np.arange(1, PRODUCTS + 1, dtype=float) ** -1.05
    pmf /= pmf.sum()

    # Ground truth accumulators (what an offline warehouse would compute).
    sale_count = np.zeros(PRODUCTS)
    sale_revenue = np.zeros(PRODUCTS)
    ad_count = np.zeros(PRODUCTS)

    for _ in range(SALES):
        product = int(rng.choice(PRODUCTS, p=pmf))
        price = float(np.round(rng.lognormal(np.log(30.0), 0.6), 2))
        engine.process("sales", product)
        engine.process("sales_revenue", product, price)
        if product < BLACKLIST_START:
            sale_count[product] += 1
            sale_revenue[product] += price
        # ~3% of sales are returned later: delete from both streams.
        if rng.random() < 0.03:
            engine.process("sales", product, -1.0)
            engine.process("sales_revenue", product, -price)
            if product < BLACKLIST_START:
                sale_count[product] -= 1
                sale_revenue[product] -= price

    ads = rng.choice(PRODUCTS, size=IMPRESSIONS, p=pmf)
    engine.process_bulk("ads", ads)
    kept = ads[ads < BLACKLIST_START]
    np.add.at(ad_count, kept, 1.0)

    exact_count = float(sale_count @ ad_count)
    exact_sum = float(sale_revenue @ ad_count)

    count = engine.answer(JoinCountQuery("sales", "ads"))
    revenue = engine.answer(JoinSumQuery("sales", "ads", "sales_revenue"))
    average = engine.answer(JoinAverageQuery("sales", "ads", "sales_revenue"))

    seen, dropped = engine.stream_stats("sales")
    print(f"sales processed              : {seen:,} ({dropped:,} blacklisted)")
    print(f"COUNT(sales x ads)  estimate : {count:,.0f}  "
          f"(exact {exact_count:,.0f}, {abs(count-exact_count)/exact_count:.2%} err)")
    print(f"SUM_rev(sales x ads) estimate: ${revenue:,.0f}  "
          f"(exact ${exact_sum:,.0f}, {abs(revenue-exact_sum)/exact_sum:.2%} err)")
    print(f"AVG matched sale revenue     : ${average:,.2f}  "
          f"(exact ${exact_sum / exact_count:,.2f})")


if __name__ == "__main__":
    main()
