"""Sensor network: correlating *recent* readings across two sensor fields.

Run:  python examples/sensor_window.py

The paper's intro lists sensor networks and weather measurements among
its streaming applications.  Here two sensor fields stream quantised
readings continuously, and the operator wants the correlation count

    COUNT(field_A join field_B on reading bucket)   over the last W hours

— a *sliding-window* join (related work [12]), which this library gets
for free from sketch linearity: one sub-sketch per hourly epoch, expired
exactly when it leaves the window (``repro.streams.windows``).

The simulation moves a weather front through field A: in old epochs the
two fields agree (readings overlap heavily); in recent epochs field A has
shifted.  A whole-stream sketch keeps reporting high correlation;
the windowed sketch sees the change.
"""

from __future__ import annotations

import numpy as np

from repro.sketches import HashSketchSchema
from repro.streams.windows import WindowedSketchSchema

READING_BUCKETS = 4096       # quantised sensor readings
READINGS_PER_EPOCH = 20_000
WINDOW_EPOCHS = 3
TOTAL_EPOCHS = 10
FRONT_ARRIVES_AT = 7         # epoch when field A's readings shift


def epoch_readings(rng, epoch, field):
    """Gaussian-ish quantised readings; field A shifts late in the run."""
    centre = 1000.0
    if field == "A" and epoch >= FRONT_ARRIVES_AT:
        centre = 2600.0  # the front: field A now reads much higher
    readings = rng.normal(centre, 120.0, size=READINGS_PER_EPOCH)
    return np.clip(np.round(readings), 0, READING_BUCKETS - 1).astype(np.int64)


def main() -> None:
    windowed_schema = WindowedSketchSchema(
        width=256, depth=7, domain_size=READING_BUCKETS,
        window_epochs=WINDOW_EPOCHS, seed=5,
    )
    window_a = windowed_schema.create_sketch()
    window_b = windowed_schema.create_sketch()

    whole_schema = HashSketchSchema(256, 7, READING_BUCKETS, seed=5)
    whole_a = whole_schema.create_sketch()
    whole_b = whole_schema.create_sketch()

    rng = np.random.default_rng(0)
    print(f"window = last {WINDOW_EPOCHS} epochs; front arrives at epoch "
          f"{FRONT_ARRIVES_AT}\n")
    print("epoch | windowed join estimate | whole-stream join estimate")
    print("------+------------------------+---------------------------")
    for epoch in range(TOTAL_EPOCHS):
        if epoch > 0:
            window_a.advance_epoch()
            window_b.advance_epoch()
        a = epoch_readings(rng, epoch, "A")
        b = epoch_readings(rng, epoch, "B")
        window_a.update_bulk(a)
        window_b.update_bulk(b)
        whole_a.update_bulk(a)
        whole_b.update_bulk(b)
        windowed = window_a.est_join_size(window_b)
        whole = whole_a.est_join_size(whole_b)
        print(f"{epoch:5d} | {windowed:22,.0f} | {whole:26,.0f}")

    print("\nOnce the front has filled the window, the windowed estimate "
          "collapses toward zero (the fields no longer correlate), while "
          "the whole-stream estimate keeps growing on stale agreement.")


if __name__ == "__main__":
    main()
