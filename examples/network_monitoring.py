"""Network monitoring: correlating flows across two routers in real time.

Run:  python examples/network_monitoring.py

The paper's motivating scenario (§1): a large ISP continuously collects
per-flow records (here: destination-address keys) at different points of
the network and wants on-line answers to correlation queries such as

    "how many (packet@router1, packet@router2) pairs share a destination?"
    = COUNT(R1 join R2 on destination)

without storing the traffic.  This example simulates two routers seeing
overlapping, heavy-tailed traffic — including *retracted* records (e.g.
flow-timeout corrections), which arrive as deletions — and answers the
query from a few-KB synopsis per router via the Figure-1 stream engine.
It also flags the heaviest destinations (COUNTSKETCH top-k) as a bonus:
those are exactly the "dense" values skimming isolates.
"""

from __future__ import annotations

import numpy as np

from repro import SketchParameters, TopKSketch
from repro.sketches import HashSketchSchema
from repro.streams import JoinCountQuery, SelfJoinQuery, StreamEngine
from repro.streams.generators import zipf_frequencies
from repro.streams.model import FrequencyVector, iter_stream

ADDRESS_SPACE = 1 << 16  # hashed /16 destination keys
FLOWS_PER_ROUTER = 150_000
RETRACTION_RATE = 0.02


def simulate_router_traffic(seed: int, hot_shift: int) -> FrequencyVector:
    """Heavy-tailed per-destination flow counts, distinct hot set per router."""
    base = zipf_frequencies(
        ADDRESS_SPACE, FLOWS_PER_ROUTER, 1.1, np.random.default_rng(seed)
    )
    # Routers see overlapping but not identical hot destinations.
    return FrequencyVector(np.roll(base.counts, hot_shift))


def main() -> None:
    engine = StreamEngine(
        domain_size=ADDRESS_SPACE,
        parameters=SketchParameters(width=300, depth=11),
        synopsis="skimmed",
        seed=2024,
    )
    engine.register_stream("router1")
    engine.register_stream("router2")

    top_tracker = TopKSketch(
        HashSketchSchema(512, 7, ADDRESS_SPACE, seed=9), k=5
    )

    rng = np.random.default_rng(1)
    truth = {}
    for router, shift in (("router1", 0), ("router2", 40)):
        traffic = simulate_router_traffic(seed=shift, hot_shift=shift)
        truth[router] = traffic
        for update in iter_stream(traffic):
            engine.process(router, update.value, update.weight)
            if router == "router1":
                top_tracker.update(update.value, update.weight)
            # Occasionally the collector retracts a record (flow-timeout
            # merge): a deletion, which the sketches absorb exactly.
            if rng.random() < RETRACTION_RATE:
                engine.process(router, update.value, -update.weight)
                engine.process(router, update.value, update.weight)

    actual = truth["router1"].join_size(truth["router2"])
    answer = engine.answer(JoinCountQuery("router1", "router2"))
    print(f"flows per router             : {FLOWS_PER_ROUTER:,}")
    print(f"exact cross-router matches   : {actual:,.0f}")
    print(f"sketch estimate              : {answer:,.0f} "
          f"({abs(answer - actual) / actual:.2%} error)")
    print(f"synopsis space               : "
          f"{engine.total_space_in_counters():,} counters total")

    f2 = engine.answer(SelfJoinQuery("router1"))
    print(f"router1 traffic concentration (F2): {f2:,.0f} "
          f"(exact {truth['router1'].self_join_size():,.0f})")

    print("\nhottest destinations at router1 (COUNTSKETCH top-5):")
    for value, estimate in top_tracker.top_k():
        print(f"  dest {value:>6}: ~{estimate:,.0f} flows "
              f"(exact {truth['router1'][value]:,.0f})")


if __name__ == "__main__":
    main()
