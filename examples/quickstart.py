"""Quickstart: estimate COUNT(F join G) over two update streams.

Run:  python examples/quickstart.py

Walks through the minimal skimmed-sketch workflow:

1. create one :class:`SkimmedSketchSchema` (both streams must share it —
   joined sketches need identical hash functions);
2. feed each stream's updates (inserts *and* deletes) into its sketch;
3. ask for the join size, and peek at the sub-join decomposition the
   estimator works with internally.
"""

from __future__ import annotations

import numpy as np

from repro import SkimmedSketchSchema
from repro.streams import shifted_zipf_pair

DOMAIN = 1 << 14  # 16K distinct values
STREAM_SIZE = 200_000


def main() -> None:
    # One schema, shared by every join-compatible sketch.
    schema = SkimmedSketchSchema(width=200, depth=11, domain_size=DOMAIN, seed=42)
    sketch_f = schema.create_sketch()
    sketch_g = schema.create_sketch()

    # A skewed synthetic workload: Zipf(1.0) joined with its right-shifted
    # twin (the paper's §5 setup).  In production these updates would
    # arrive one at a time from the network — `update(value, weight)` is
    # the only maintenance call you need, and weight=-1 deletes.
    rng = np.random.default_rng(7)
    f, g = shifted_zipf_pair(DOMAIN, STREAM_SIZE, z=1.0, shift=100, rng=rng)
    sketch_f.ingest_frequency_vector(f)  # bulk equivalent of update() calls
    sketch_g.ingest_frequency_vector(g)

    # A couple of live single-element updates, including a delete:
    sketch_f.update(17)
    sketch_f.update(17, -1.0)

    actual = f.join_size(g)
    estimate = sketch_f.est_join_size(sketch_g)
    print(f"exact join size      : {actual:,.0f}")
    print(f"skimmed-sketch answer: {estimate:,.0f}")
    print(f"relative error       : {abs(estimate - actual) / actual:.2%}")
    print(f"synopsis size        : {sketch_f.size_in_counters()} counters "
          f"({sketch_f.size_in_counters() * 8} bytes per stream)")

    breakdown = sketch_f.join_breakdown(sketch_g)
    print("\nsub-join decomposition (Figure 4 of the paper):")
    print(f"  dense x dense (exact) : {breakdown.dense_dense:,.0f}")
    print(f"  dense x sparse        : {breakdown.dense_sparse:,.0f}")
    print(f"  sparse x dense        : {breakdown.sparse_dense:,.0f}")
    print(f"  sparse x sparse       : {breakdown.sparse_sparse:,.0f}")
    print(f"  dense values skimmed  : F={breakdown.f_skim.dense_count}, "
          f"G={breakdown.g_skim.dense_count} "
          f"(threshold ~{breakdown.f_skim.threshold:,.0f})")


if __name__ == "__main__":
    main()
