"""Distributed monitoring: edge sites sketch locally, HQ merges exactly.

Run:  python examples/distributed_monitoring.py

The paper's deployment picture (§1): usage data is produced all over a
large network, but the analysis happens centrally.  Shipping raw traffic
is out of the question; shipping *sketches* costs kilobytes per site per
round, and — because sketches are linear — the coordinator's merged
estimate is identical to what a single centralised sketch would produce.
This example runs four edge sites over skewed traffic shares, ships one
reporting round, and compares the distributed estimate, the centralised
estimate, and the exact answer, along with the bytes actually "sent".
"""

from __future__ import annotations

import numpy as np

from repro import SkimmedSketchSchema
from repro.distributed import SketchCoordinator, SketchSite
from repro.streams import shifted_zipf_pair

DOMAIN = 1 << 16
TOTAL = 400_000
NUM_SITES = 4


def split_shares(counts: np.ndarray, parts: int, rng) -> list[np.ndarray]:
    """Randomly route each element's occurrences to one of ``parts`` sites."""
    remaining = counts.astype(np.int64).copy()
    shares = []
    for part in range(parts - 1):
        draw = rng.binomial(remaining, 1.0 / (parts - part))
        shares.append(draw.astype(np.float64))
        remaining -= draw
    shares.append(remaining.astype(np.float64))
    return shares


def main() -> None:
    schema = SkimmedSketchSchema(width=300, depth=11, domain_size=DOMAIN, seed=77)
    f, g = shifted_zipf_pair(DOMAIN, TOTAL, 1.1, 200, np.random.default_rng(3))
    actual = f.join_size(g)

    rng = np.random.default_rng(9)
    coordinator = SketchCoordinator(schema)
    for index, (f_share, g_share) in enumerate(
        zip(split_shares(f.counts, NUM_SITES, rng),
            split_shares(g.counts, NUM_SITES, rng))
    ):
        site = SketchSite(f"edge-{index}", schema, ["flows_in", "flows_out"])
        site.observe_bulk("flows_in", np.flatnonzero(f_share),
                          f_share[f_share > 0])
        site.observe_bulk("flows_out", np.flatnonzero(g_share),
                          g_share[g_share > 0])
        summary = coordinator.receive_all(site.close_round())
        print(f"{site.name}: reported {summary.reports_merged} sketches, "
              f"{summary.bytes_received:,} bytes")

    distributed = coordinator.est_join_size("flows_in", "flows_out")
    central = schema.sketch_of(f).est_join_size(schema.sketch_of(g))
    _, total_bytes = coordinator.communication_stats()

    print(f"\nelements across the fleet : {2 * TOTAL:,}")
    print(f"exact join size           : {actual:,.0f}")
    print(f"centralised sketch answer : {central:,.0f}")
    print(f"distributed (merged)      : {distributed:,.0f}   "
          f"<- identical to centralised: {distributed == central}")
    print(f"total communication       : {total_bytes:,} bytes "
          f"(vs ~{2 * TOTAL * 8:,} bytes of raw values)")


if __name__ == "__main__":
    main()
